// Loss models for the fault plane.
//
// Gilbert–Elliott two-state burst loss: a Markov chain toggling between a
// "good" state (steady-state loss) and a "bad" state (a burst window where
// most frames die). Classic for modelling radio fading/interference, and
// exactly the adversity that separates "retries at fixed cadence" from
// backed-off retries: during a bad-state dwell every immediate retry is
// wasted, while a retry delayed past the dwell usually lands.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace ph::fault {

struct GilbertElliottParams {
  /// Per-frame probability of entering the bad state from good.
  double p_enter_bad = 0.05;
  /// Per-frame probability of leaving the bad state (mean dwell =
  /// 1/p_exit_bad frames).
  double p_exit_bad = 0.25;
  /// Frame-loss probability while in the good state; the layered result is
  /// max(base, loss_good), so 0 means "the tech profile's own loss".
  double loss_good = 0.0;
  /// Frame-loss probability while in the bad state.
  double loss_bad = 0.6;
};

/// One chain instance; advanced once per frame attempt.
class GilbertElliott {
 public:
  explicit GilbertElliott(GilbertElliottParams params) : params_(params) {}

  /// Transitions the chain for one frame attempt and returns that frame's
  /// loss probability layered over the technology's steady-state `base`.
  double advance(double base, sim::Rng& rng) {
    if (bad_) {
      if (rng.chance(params_.p_exit_bad)) bad_ = false;
    } else if (rng.chance(params_.p_enter_bad)) {
      bad_ = true;
      ++transitions_to_bad_;
    }
    const double state_loss = bad_ ? params_.loss_bad : params_.loss_good;
    return state_loss > base ? state_loss : base;
  }

  bool in_bad_state() const noexcept { return bad_; }
  std::uint64_t transitions_to_bad() const noexcept {
    return transitions_to_bad_;
  }
  const GilbertElliottParams& params() const noexcept { return params_; }

 private:
  GilbertElliottParams params_;
  bool bad_ = false;
  std::uint64_t transitions_to_bad_ = 0;
};

}  // namespace ph::fault
