// Fault schedules — scriptable adversity on the virtual-time axis.
//
// A Schedule is plain data: typed fault windows with absolute start times.
// FaultPlane::load() arms them all on the simulator; because both the
// schedule generator and every fault effect draw only from explicitly
// seeded RNG streams, the same seed replays the same faults byte-for-byte
// (bench/chaos_soak.cpp asserts this through its metrics dump).
#pragma once

#include <cstddef>
#include <vector>

#include "fault/model.hpp"
#include "net/tech.hpp"
#include "net/types.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ph::fault {

/// Burst-loss window: a Gilbert–Elliott chain layered over one
/// technology's steady-state frame loss for `duration`.
struct BurstLoss {
  net::Technology tech = net::Technology::bluetooth;
  sim::Time start = 0;
  sim::Duration duration = sim::seconds(10);
  GilbertElliottParams model;
};

/// Radio outage (link flap): one adapter powers off, then back on —
/// breaking its links mid-transfer, exactly what resume/handover must
/// survive.
struct RadioOutage {
  net::NodeId node = net::kInvalidNode;
  net::Technology tech = net::Technology::bluetooth;
  sim::Time start = 0;
  sim::Duration duration = sim::seconds(5);
};

/// Latency spike: every frame of one technology takes `extra` longer
/// (congested AP, cellular backhaul hiccup).
struct LatencySpike {
  net::Technology tech = net::Technology::bluetooth;
  sim::Time start = 0;
  sim::Duration duration = sim::seconds(10);
  sim::Duration extra = sim::milliseconds(200);
};

/// Signal-degradation ramp: one node's signal (every technology) fades
/// linearly to `floor` over `ramp`, holds, then recovers over `recover` —
/// a device descending into a stairwell. Drives proactive handover.
struct SignalRamp {
  net::NodeId node = net::kInvalidNode;
  sim::Time start = 0;
  sim::Duration ramp = sim::seconds(5);
  sim::Duration hold = sim::seconds(10);
  sim::Duration recover = sim::seconds(5);
  double floor = 0.0;
};

/// Whole-device blackout: shutdown at `start`, restart after `duration`.
/// With Stack hooks installed the daemon cold-restarts and rebuilds its
/// neighbour table from re-discovery.
struct Blackout {
  net::NodeId node = net::kInvalidNode;
  sim::Time start = 0;
  sim::Duration duration = sim::seconds(30);
};

struct Schedule {
  std::vector<BurstLoss> bursts;
  std::vector<RadioOutage> outages;
  std::vector<LatencySpike> latency_spikes;
  std::vector<SignalRamp> signal_ramps;
  std::vector<Blackout> blackouts;

  std::size_t size() const noexcept {
    return bursts.size() + outages.size() + latency_spikes.size() +
           signal_ramps.size() + blackouts.size();
  }
  bool empty() const noexcept { return size() == 0; }
};

/// Knobs for random_schedule(). Counts are events over the whole horizon.
struct RandomScheduleParams {
  sim::Duration horizon = sim::minutes(5);
  /// Devices eligible for outages/ramps/blackouts (usually every stack).
  std::vector<net::NodeId> nodes;
  /// Technologies eligible for bursts/outages/spikes.
  std::vector<net::Technology> technologies = {net::Technology::bluetooth};
  int bursts = 3;
  int outages = 2;
  int latency_spikes = 2;
  int signal_ramps = 1;
  int blackouts = 1;
};

/// Draws a schedule from `rng` — deterministic for a given seed. Start
/// times are uniform over the horizon; durations are drawn so every fault
/// window ends within it.
Schedule random_schedule(sim::Rng& rng, const RandomScheduleParams& params);

}  // namespace ph::fault
