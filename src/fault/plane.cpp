#include "net/medium.hpp"
#include "fault/plane.hpp"

#include <algorithm>

#include "obs/export.hpp"
#include "obs/prof.hpp"
#include "util/log.hpp"

namespace ph::fault {

FaultPlane::FaultPlane(net::Medium& medium, sim::Rng rng)
    : medium_(medium), simulator_(medium.simulator()), rng_(rng) {
  trace_ = &medium_.trace();
  obs::Registry& registry = medium_.registry();
  c_bursts_started_ = &registry.counter("fault.bursts_started");
  c_bursts_ended_ = &registry.counter("fault.bursts_ended");
  c_burst_transitions_ = &registry.counter("fault.burst_transitions_to_bad");
  c_outages_started_ = &registry.counter("fault.outages_started");
  c_outages_ended_ = &registry.counter("fault.outages_ended");
  c_latency_spikes_ = &registry.counter("fault.latency_spikes");
  c_signal_ramps_ = &registry.counter("fault.signal_ramps");
  c_blackouts_started_ = &registry.counter("fault.blackouts_started");
  c_blackouts_ended_ = &registry.counter("fault.blackouts_ended");
  medium_.set_fault_injector(this);
}

FaultPlane::~FaultPlane() {
  if (medium_.fault_injector() == this) medium_.set_fault_injector(nullptr);
}

void FaultPlane::set_device_hooks(net::NodeId node, DeviceHooks hooks) {
  hooks_[node] = std::move(hooks);
}

void FaultPlane::load(const Schedule& schedule) {
  // Every fault window (and anything its begin_* events schedule in turn)
  // attributes to the fault-plane cost center.
  const obs::prof::TagScope fault_tag(obs::prof::Center::net_fault);
  const sim::Time now = simulator_.now();
  const auto at = [&](sim::Time start) { return std::max(start, now); };
  for (const BurstLoss& b : schedule.bursts) {
    simulator_.schedule_at(at(b.start), [this, b] {
      begin_burst(b.tech, b.model, b.duration);
    });
  }
  for (const RadioOutage& o : schedule.outages) {
    simulator_.schedule_at(at(o.start), [this, o] {
      begin_outage(o.node, o.tech, o.duration);
    });
  }
  for (const LatencySpike& s : schedule.latency_spikes) {
    simulator_.schedule_at(at(s.start), [this, s] {
      begin_latency_spike(s.tech, s.extra, s.duration);
    });
  }
  for (const SignalRamp& r : schedule.signal_ramps) {
    simulator_.schedule_at(at(r.start), [this, r] { begin_signal_ramp(r); });
  }
  for (const Blackout& b : schedule.blackouts) {
    simulator_.schedule_at(at(b.start),
                           [this, b] { begin_blackout(b.node, b.duration); });
  }
}

void FaultPlane::begin_burst(net::Technology tech, GilbertElliottParams model,
                             sim::Duration duration) {
  auto& slot = bursts_[index(tech)];
  if (slot) end_burst(tech);  // windows do not stack; the new one wins
  Burst burst{GilbertElliott(model), ++burst_generation_,
              trace_->begin_span("fault.burst", simulator_.now(),
                                 net::kInvalidNode, "fault")};
  slot = burst;
  c_bursts_started_->inc();
  PH_LOG(info, "fault") << "burst-loss window on " << net::to_string(tech)
                        << " for " << sim::to_seconds(duration) << "s";
  const std::uint64_t gen = burst.generation;
  simulator_.schedule(duration, [this, tech, gen] {
    auto& active = bursts_[index(tech)];
    if (active && active->generation == gen) end_burst(tech);
  });
}

void FaultPlane::end_burst(net::Technology tech) {
  auto& slot = bursts_[index(tech)];
  if (!slot) return;
  trace_->end_span(slot->span, simulator_.now());
  c_bursts_ended_->inc();
  slot.reset();
}

bool FaultPlane::burst_active(net::Technology tech) const {
  return bursts_[index(tech)].has_value();
}

void FaultPlane::begin_outage(net::NodeId node, net::Technology tech,
                              sim::Duration duration) {
  net::Adapter* adapter = medium_.adapter(node, tech);
  if (adapter == nullptr) return;
  c_outages_started_->inc();
  const obs::SpanId span =
      trace_->begin_span("fault.outage", simulator_.now(), node, "fault");
  // PH_FLIGHT_JSON: snapshot the flight-recorder ring the moment the fault
  // fires, while the lead-up is still in the buffer.
  obs::dump_flight_recording(*trace_, "outage");
  PH_LOG(info, "fault") << "radio outage: node " << node << " "
                        << net::to_string(tech) << " for "
                        << sim::to_seconds(duration) << "s";
  adapter->set_powered(false);
  simulator_.schedule(duration, [this, node, tech, span] {
    if (net::Adapter* a = medium_.adapter(node, tech)) a->set_powered(true);
    trace_->end_span(span, simulator_.now());
    c_outages_ended_->inc();
  });
}

void FaultPlane::begin_latency_spike(net::Technology tech, sim::Duration extra,
                                     sim::Duration duration) {
  auto& slot = spikes_[index(tech)];
  if (slot) trace_->end_span(slot->span, simulator_.now());
  Spike spike{extra, ++spike_generation_,
              trace_->begin_span("fault.latency_spike", simulator_.now(),
                                 net::kInvalidNode, "fault")};
  slot = spike;
  c_latency_spikes_->inc();
  const std::uint64_t gen = spike.generation;
  simulator_.schedule(duration, [this, tech, gen] {
    auto& active = spikes_[index(tech)];
    if (active && active->generation == gen) {
      trace_->end_span(active->span, simulator_.now());
      active.reset();
    }
  });
}

void FaultPlane::begin_signal_ramp(SignalRamp ramp) {
  ramp.start = std::max(ramp.start, simulator_.now());
  c_signal_ramps_->inc();
  const obs::SpanId span =
      trace_->begin_span("fault.signal_ramp", simulator_.now(), ramp.node,
                         "fault");
  const sim::Duration total = ramp.ramp + ramp.hold + ramp.recover;
  ramps_.push_back(ramp);
  // The ramp may attenuate signals already memoized at this timestamp.
  medium_.invalidate_signal_memo();
  simulator_.schedule(total, [this, span] {
    trace_->end_span(span, simulator_.now());
    // Prune ramps that have fully recovered; factors of finished ramps are
    // 1.0 anyway, this just bounds the scan.
    const sim::Time now = simulator_.now();
    std::erase_if(ramps_, [now](const SignalRamp& r) {
      return r.start + r.ramp + r.hold + r.recover <= now;
    });
  });
}

void FaultPlane::begin_blackout(net::NodeId node, sim::Duration duration) {
  if (blacked_out_[node]) return;  // already dark; ignore the overlap
  blacked_out_[node] = true;
  c_blackouts_started_->inc();
  const obs::SpanId span =
      trace_->begin_span("fault.blackout", simulator_.now(), node, "fault");
  obs::dump_flight_recording(*trace_, "blackout");
  PH_LOG(info, "fault") << "blackout: node " << node << " for "
                        << sim::to_seconds(duration) << "s";
  auto hooks = hooks_.find(node);
  if (hooks != hooks_.end() && hooks->second.shutdown) {
    hooks->second.shutdown();
  } else {
    for (net::Technology tech :
         {net::Technology::bluetooth, net::Technology::wlan,
          net::Technology::gprs}) {
      if (net::Adapter* a = medium_.adapter(node, tech)) a->set_powered(false);
    }
  }
  simulator_.schedule(duration, [this, node, span] {
    blacked_out_[node] = false;
    auto h = hooks_.find(node);
    if (h != hooks_.end() && h->second.restart) {
      h->second.restart();
    } else {
      for (net::Technology tech :
           {net::Technology::bluetooth, net::Technology::wlan,
            net::Technology::gprs}) {
        if (net::Adapter* a = medium_.adapter(node, tech)) {
          a->set_powered(true);
        }
      }
    }
    trace_->end_span(span, simulator_.now());
    c_blackouts_ended_->inc();
  });
}

double FaultPlane::frame_loss(net::Technology tech, double base) {
  auto& burst = bursts_[index(tech)];
  if (!burst) return base;
  const std::uint64_t before = burst->chain.transitions_to_bad();
  const double loss = burst->chain.advance(base, rng_);
  c_burst_transitions_->inc(burst->chain.transitions_to_bad() - before);
  return loss;
}

sim::Duration FaultPlane::extra_latency(net::Technology tech) {
  const auto& spike = spikes_[index(tech)];
  return spike ? spike->extra : sim::Duration{0};
}

double FaultPlane::ramp_factor(net::NodeId node) const {
  const sim::Time now = simulator_.now();
  double factor = 1.0;
  for (const SignalRamp& r : ramps_) {
    if (r.node != node || now < r.start) continue;
    const sim::Time fade_end = r.start + r.ramp;
    const sim::Time hold_end = fade_end + r.hold;
    const sim::Time recover_end = hold_end + r.recover;
    double f = 1.0;
    if (now < fade_end) {
      const double progress =
          r.ramp == 0 ? 1.0
                      : static_cast<double>(now - r.start) /
                            static_cast<double>(r.ramp);
      f = 1.0 + (r.floor - 1.0) * progress;
    } else if (now < hold_end) {
      f = r.floor;
    } else if (now < recover_end) {
      const double progress =
          r.recover == 0 ? 1.0
                         : static_cast<double>(now - hold_end) /
                               static_cast<double>(r.recover);
      f = r.floor + (1.0 - r.floor) * progress;
    }
    factor = std::min(factor, f);
  }
  return factor;
}

double FaultPlane::signal_factor(net::NodeId a, net::NodeId b) const {
  if (ramps_.empty()) return 1.0;
  return ramp_factor(a) * ramp_factor(b);
}

Schedule random_schedule(sim::Rng& rng, const RandomScheduleParams& params) {
  Schedule out;
  const auto horizon = static_cast<double>(params.horizon);
  const auto pick_time = [&](double max_fraction_of_horizon) {
    // Leave room so the window's duration fits inside the horizon.
    return static_cast<sim::Time>(
        rng.uniform(0.0, horizon * (1.0 - max_fraction_of_horizon)));
  };
  const auto pick_node = [&]() -> net::NodeId {
    if (params.nodes.empty()) return net::kInvalidNode;
    return params.nodes[static_cast<std::size_t>(
        rng.uniform_int(0, params.nodes.size() - 1))];
  };
  const auto pick_tech = [&]() -> net::Technology {
    if (params.technologies.empty()) return net::Technology::bluetooth;
    return params.technologies[static_cast<std::size_t>(
        rng.uniform_int(0, params.technologies.size() - 1))];
  };
  for (int i = 0; i < params.bursts; ++i) {
    BurstLoss b;
    b.tech = pick_tech();
    b.start = pick_time(0.15);
    b.duration = static_cast<sim::Duration>(rng.uniform(0.05, 0.15) * horizon);
    b.model.p_enter_bad = rng.uniform(0.02, 0.1);
    b.model.p_exit_bad = rng.uniform(0.1, 0.4);
    b.model.loss_bad = rng.uniform(0.4, 0.85);
    out.bursts.push_back(b);
  }
  for (int i = 0; i < params.outages; ++i) {
    RadioOutage o;
    o.node = pick_node();
    o.tech = pick_tech();
    o.start = pick_time(0.05);
    o.duration = static_cast<sim::Duration>(rng.uniform(0.01, 0.05) * horizon);
    out.outages.push_back(o);
  }
  for (int i = 0; i < params.latency_spikes; ++i) {
    LatencySpike s;
    s.tech = pick_tech();
    s.start = pick_time(0.1);
    s.duration = static_cast<sim::Duration>(rng.uniform(0.03, 0.1) * horizon);
    s.extra = sim::milliseconds(
        static_cast<std::uint64_t>(rng.uniform(50.0, 500.0)));
    out.latency_spikes.push_back(s);
  }
  for (int i = 0; i < params.signal_ramps; ++i) {
    SignalRamp r;
    r.node = pick_node();
    r.start = pick_time(0.15);
    const auto leg = static_cast<sim::Duration>(rng.uniform(0.02, 0.05) * horizon);
    r.ramp = leg;
    r.hold = leg;
    r.recover = leg;
    r.floor = rng.uniform(0.0, 0.2);
    out.signal_ramps.push_back(r);
  }
  for (int i = 0; i < params.blackouts; ++i) {
    Blackout b;
    b.node = pick_node();
    b.start = pick_time(0.1);
    b.duration = static_cast<sim::Duration>(rng.uniform(0.03, 0.1) * horizon);
    out.blackouts.push_back(b);
  }
  return out;
}

}  // namespace ph::fault
