// FaultPlane — the deterministic fault-injection plane (ISSUE 2 tentpole).
//
// Implements net::FaultInjector and installs itself into a Medium: from
// then on every frame attempt consults the plane's burst-loss chains,
// every propagation delay its latency spikes, and every signal sample its
// degradation ramps. Radio outages and whole-device blackouts are driven
// actively through the simulator (adapter power toggles / device hooks).
//
// Determinism: all randomness comes from the plane's own Rng (passed in,
// normally forked off the world seed) and the Medium's existing stream —
// virtual time does the rest. Two runs with the same seeds produce
// identical `fault.*` and `peerhood.*` metrics, which is what makes chaos
// soaks diffable.
//
// Observability: every fault window bumps `fault.*` counters in the
// world's registry and records a span in its trace journal.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fault/model.hpp"
#include "fault/schedule.hpp"
#include "net/fault.hpp"
#include "net/medium.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace ph::fault {

/// How the plane shuts down / boots one device for a Blackout. Scenarios
/// that own full peerhood::Stacks register
///   {.shutdown = [&]{ stack.blackout(); },
///    .restart  = [&]{ stack.restart(); }}
/// so the daemon cold-restarts and rebuilds its neighbour table; without
/// hooks the plane falls back to powering the node's adapters off and on
/// (radios die, but whatever state the layers above keep survives).
struct DeviceHooks {
  std::function<void()> shutdown;
  std::function<void()> restart;
};

class FaultPlane : public net::FaultInjector {
 public:
  /// Installs itself as `medium`'s fault injector. `rng` seeds the plane's
  /// private loss-model stream (fork the world RNG for a one-seed setup).
  FaultPlane(net::Medium& medium, sim::Rng rng);
  ~FaultPlane() override;
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  void set_device_hooks(net::NodeId node, DeviceHooks hooks);

  /// Arms every event of `schedule` on the simulator. May be called before
  /// or during the run; events whose start is already past fire
  /// immediately-ish (next simulator step).
  void load(const Schedule& schedule);

  // Manual triggers (tests drive these directly; load() uses them too).
  void begin_burst(net::Technology tech, GilbertElliottParams model,
                   sim::Duration duration);
  void end_burst(net::Technology tech);
  void begin_outage(net::NodeId node, net::Technology tech,
                    sim::Duration duration);
  void begin_latency_spike(net::Technology tech, sim::Duration extra,
                           sim::Duration duration);
  void begin_signal_ramp(SignalRamp ramp);
  void begin_blackout(net::NodeId node, sim::Duration duration);

  /// Whether a burst-loss chain is currently layered on `tech`.
  bool burst_active(net::Technology tech) const;

  /// Typed view of the registry's `fault.*` instruments.
  obs::Snapshot stats() const { return medium_.registry().snapshot("fault."); }

  // --- net::FaultInjector ------------------------------------------------
  double frame_loss(net::Technology tech, double base) override;
  sim::Duration extra_latency(net::Technology tech) override;
  double signal_factor(net::NodeId a, net::NodeId b) const override;

 private:
  static constexpr std::size_t kTechs = 3;
  static std::size_t index(net::Technology tech) {
    return static_cast<std::size_t>(tech);
  }

  /// Signal multiplier for one node from its active ramps at time `now`.
  double ramp_factor(net::NodeId node) const;

  net::Medium& medium_;
  sim::Simulator& simulator_;
  sim::Rng rng_;
  obs::Trace* trace_ = nullptr;

  /// Active burst chain per technology (nullopt = steady state). Each
  /// window carries a generation so a stale end-timer cannot cancel a
  /// newer window.
  struct Burst {
    GilbertElliott chain;
    std::uint64_t generation = 0;
    obs::SpanId span = 0;
  };
  std::array<std::optional<Burst>, kTechs> bursts_;
  std::uint64_t burst_generation_ = 0;

  struct Spike {
    sim::Duration extra = 0;
    std::uint64_t generation = 0;
    obs::SpanId span = 0;
  };
  std::array<std::optional<Spike>, kTechs> spikes_;
  std::uint64_t spike_generation_ = 0;

  std::vector<SignalRamp> ramps_;  // evaluated lazily against now()
  std::map<net::NodeId, DeviceHooks> hooks_;
  std::map<net::NodeId, bool> blacked_out_;

  // Registry handles (`fault.*`).
  obs::Counter* c_bursts_started_ = nullptr;
  obs::Counter* c_bursts_ended_ = nullptr;
  obs::Counter* c_burst_transitions_ = nullptr;
  obs::Counter* c_outages_started_ = nullptr;
  obs::Counter* c_outages_ended_ = nullptr;
  obs::Counter* c_latency_spikes_ = nullptr;
  obs::Counter* c_signal_ramps_ = nullptr;
  obs::Counter* c_blackouts_started_ = nullptr;
  obs::Counter* c_blackouts_ended_ = nullptr;
};

}  // namespace ph::fault
