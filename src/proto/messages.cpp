#include "proto/messages.hpp"

namespace ph::proto {

std::string_view to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::ps_get_online_member_list: return "PS_GETONLINEMEMBERLIST";
    case Opcode::ps_get_interest_list: return "PS_GETINTERESTLIST";
    case Opcode::ps_get_interested_member_list: return "PS_GETINTERESTEDMEMBERLIST";
    case Opcode::ps_get_profile: return "PS_GETPROFILE";
    case Opcode::ps_add_profile_comment: return "PS_ADDPROFILECOMMENT";
    case Opcode::ps_check_member_id: return "PS_CHECKMEMBERID";
    case Opcode::ps_msg: return "PS_MSG";
    case Opcode::ps_get_shared_content: return "PS_SHAREDCONTENT";
    case Opcode::ps_get_trusted_friends: return "PS_GETTRUSTEDFRIEND";
    case Opcode::ps_check_trusted: return "PS_CHECKTRUSTED";
    case Opcode::ps_get_content: return "PS_GETCONTENT";
    case Opcode::ps_get_content_chunk: return "PS_GETCONTENTCHUNK";
  }
  return "PS_UNKNOWN";
}

std::string_view to_string(Status status) noexcept {
  switch (status) {
    case Status::ok: return "OK";
    case Status::no_members_yet: return "NO_MEMBERS_YET";
    case Status::not_trusted_yet: return "NOT_TRUSTED_YET";
    case Status::successfully_written: return "SUCCESSFULLY_WRITTEN";
    case Status::unsuccessful: return "UNSUCCESSFULL";
  }
  return "?";
}

namespace {

void put(Writer& w, const CommentData& c) {
  w.str(c.author);
  w.str(c.text);
  w.u64(c.at_us);
}

Result<CommentData> get_comment(Reader& r) {
  CommentData c;
  auto author = r.str();
  if (!author) return author.error();
  c.author = std::move(*author);
  auto text = r.str();
  if (!text) return text.error();
  c.text = std::move(*text);
  auto at = r.u64();
  if (!at) return at.error();
  c.at_us = *at;
  return c;
}

void put(Writer& w, const ProfileData& p) {
  w.str(p.member_id);
  w.str(p.display_name);
  w.u32(p.age);
  w.str(p.about);
  w.str_list(p.interests);
  w.str_list(p.trusted_friends);
  w.u32(static_cast<std::uint32_t>(p.comments.size()));
  for (const auto& c : p.comments) put(w, c);
  w.str_list(p.visitors);
}

Result<ProfileData> get_profile(Reader& r) {
  ProfileData p;
  auto member_id = r.str();
  if (!member_id) return member_id.error();
  p.member_id = std::move(*member_id);
  auto name = r.str();
  if (!name) return name.error();
  p.display_name = std::move(*name);
  auto age = r.u32();
  if (!age) return age.error();
  p.age = *age;
  auto about = r.str();
  if (!about) return about.error();
  p.about = std::move(*about);
  auto interests = r.str_list();
  if (!interests) return interests.error();
  p.interests = std::move(*interests);
  auto trusted = r.str_list();
  if (!trusted) return trusted.error();
  p.trusted_friends = std::move(*trusted);
  auto n_comments = r.u32();
  if (!n_comments) return n_comments.error();
  if (*n_comments > r.remaining() / 4) {
    return Error{Errc::protocol_error, "implausible comment count"};
  }
  for (std::uint32_t i = 0; i < *n_comments; ++i) {
    auto c = get_comment(r);
    if (!c) return c.error();
    p.comments.push_back(std::move(*c));
  }
  auto visitors = r.str_list();
  if (!visitors) return visitors.error();
  p.visitors = std::move(*visitors);
  return p;
}

void put(Writer& w, const MailData& m) {
  w.str(m.receiver);
  w.str(m.sender);
  w.str(m.subject);
  w.str(m.body);
  w.u64(m.sent_at_us);
}

Result<MailData> get_mail(Reader& r) {
  MailData m;
  auto receiver = r.str();
  if (!receiver) return receiver.error();
  m.receiver = std::move(*receiver);
  auto sender = r.str();
  if (!sender) return sender.error();
  m.sender = std::move(*sender);
  auto subject = r.str();
  if (!subject) return subject.error();
  m.subject = std::move(*subject);
  auto body = r.str();
  if (!body) return body.error();
  m.body = std::move(*body);
  auto at = r.u64();
  if (!at) return at.error();
  m.sent_at_us = *at;
  return m;
}

Result<Opcode> get_opcode(Reader& r) {
  auto raw = r.u8();
  if (!raw) return raw.error();
  if (*raw < 1 || *raw > static_cast<std::uint8_t>(Opcode::ps_get_content_chunk)) {
    return Error{Errc::protocol_error, "unknown opcode"};
  }
  return static_cast<Opcode>(*raw);
}

}  // namespace

Bytes encode(const Request& request) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(request.op));
  w.u64(request.trace_parent);
  w.str(request.requester);
  w.str(request.member_id);
  w.str(request.argument);
  put(w, request.mail);
  w.u64(request.offset);
  w.u64(request.length);
  return std::move(w).take();
}

Result<Request> decode_request(BytesView data) {
  Reader r(data);
  Request req;
  auto op = get_opcode(r);
  if (!op) return op.error();
  req.op = *op;
  auto trace_parent = r.u64();
  if (!trace_parent) return trace_parent.error();
  req.trace_parent = *trace_parent;
  auto requester = r.str();
  if (!requester) return requester.error();
  req.requester = std::move(*requester);
  auto member_id = r.str();
  if (!member_id) return member_id.error();
  req.member_id = std::move(*member_id);
  auto argument = r.str();
  if (!argument) return argument.error();
  req.argument = std::move(*argument);
  auto mail = get_mail(r);
  if (!mail) return mail.error();
  req.mail = std::move(*mail);
  auto offset = r.u64();
  if (!offset) return offset.error();
  req.offset = *offset;
  auto length = r.u64();
  if (!length) return length.error();
  req.length = *length;
  return req;
}

Bytes encode(const Response& response) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(response.op));
  w.u8(static_cast<std::uint8_t>(response.status));
  w.str_list(response.names);
  put(w, response.profile);
  w.u32(static_cast<std::uint32_t>(response.items.size()));
  for (const auto& item : response.items) {
    w.str(item.name);
    w.u64(item.size_bytes);
  }
  w.bytes(response.content);
  w.u64(response.content_total);
  return std::move(w).take();
}

Result<Response> decode_response(BytesView data) {
  Reader r(data);
  Response resp;
  auto op = get_opcode(r);
  if (!op) return op.error();
  resp.op = *op;
  auto status = r.u8();
  if (!status) return status.error();
  if (*status > static_cast<std::uint8_t>(Status::unsuccessful)) {
    return Error{Errc::protocol_error, "unknown status"};
  }
  resp.status = static_cast<Status>(*status);
  auto names = r.str_list();
  if (!names) return names.error();
  resp.names = std::move(*names);
  auto profile = get_profile(r);
  if (!profile) return profile.error();
  resp.profile = std::move(*profile);
  auto n_items = r.u32();
  if (!n_items) return n_items.error();
  if (*n_items > r.remaining() / 4) {
    return Error{Errc::protocol_error, "implausible item count"};
  }
  for (std::uint32_t i = 0; i < *n_items; ++i) {
    SharedItemData item;
    auto name = r.str();
    if (!name) return name.error();
    item.name = std::move(*name);
    auto size = r.u64();
    if (!size) return size.error();
    item.size_bytes = *size;
    resp.items.push_back(std::move(item));
  }
  auto content = r.bytes();
  if (!content) return content.error();
  resp.content = std::move(*content);
  auto content_total = r.u64();
  if (!content_total) return content_total.error();
  resp.content_total = *content_total;
  return resp;
}

}  // namespace ph::proto
