#include "proto/daemon.hpp"

#include "proto/codec.hpp"

namespace ph::proto {

std::string_view to_string(DaemonOp op) noexcept {
  switch (op) {
    case DaemonOp::service_query: return "SERVICE_QUERY";
    case DaemonOp::service_reply: return "SERVICE_REPLY";
    case DaemonOp::ping: return "PING";
    case DaemonOp::pong: return "PONG";
  }
  return "?";
}

Bytes encode(const DaemonMessage& message) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(message.op));
  w.u32(message.token);
  w.u64(message.trace_parent);
  w.str(message.device_name);
  w.u32(static_cast<std::uint32_t>(message.services.size()));
  for (const auto& service : message.services) {
    w.str(service.name);
    w.u16(service.port);
    w.u32(static_cast<std::uint32_t>(service.attributes.size()));
    for (const auto& [key, value] : service.attributes) {
      w.str(key);
      w.str(value);
    }
  }
  return std::move(w).take();
}

Result<DaemonMessage> decode_daemon_message(BytesView data) {
  Reader r(data);
  DaemonMessage m;
  auto op = r.u8();
  if (!op) return op.error();
  if (*op < 1 || *op > static_cast<std::uint8_t>(DaemonOp::pong)) {
    return Error{Errc::protocol_error, "unknown daemon op"};
  }
  m.op = static_cast<DaemonOp>(*op);
  auto token = r.u32();
  if (!token) return token.error();
  m.token = *token;
  auto trace_parent = r.u64();
  if (!trace_parent) return trace_parent.error();
  m.trace_parent = *trace_parent;
  auto name = r.str();
  if (!name) return name.error();
  m.device_name = std::move(*name);
  auto n_services = r.u32();
  if (!n_services) return n_services.error();
  if (*n_services > r.remaining() / 4) {
    return Error{Errc::protocol_error, "implausible service count"};
  }
  for (std::uint32_t i = 0; i < *n_services; ++i) {
    ServiceInfoData service;
    auto service_name = r.str();
    if (!service_name) return service_name.error();
    service.name = std::move(*service_name);
    auto port = r.u16();
    if (!port) return port.error();
    service.port = *port;
    auto n_attrs = r.u32();
    if (!n_attrs) return n_attrs.error();
    if (*n_attrs > r.remaining() / 8) {
      return Error{Errc::protocol_error, "implausible attribute count"};
    }
    for (std::uint32_t j = 0; j < *n_attrs; ++j) {
      auto key = r.str();
      if (!key) return key.error();
      auto value = r.str();
      if (!value) return value.error();
      service.attributes.emplace(std::move(*key), std::move(*value));
    }
    m.services.push_back(std::move(service));
  }
  return m;
}

}  // namespace ph::proto
