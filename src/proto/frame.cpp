#include "proto/frame.hpp"

#include "util/error.hpp"

namespace ph::proto {

std::string_view to_string(FrameKind kind) noexcept {
  switch (kind) {
    case FrameKind::datagram: return "datagram";
    case FrameKind::channel_open: return "channel_open";
    case FrameKind::channel_accept: return "channel_accept";
    case FrameKind::channel_reject: return "channel_reject";
    case FrameKind::channel_data: return "channel_data";
    case FrameKind::channel_ping: return "channel_ping";
    case FrameKind::channel_pong: return "channel_pong";
  }
  return "unknown";
}

Bytes encode_frame(FrameKind kind, BytesView payload) {
  Bytes out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.push_back(static_cast<std::uint8_t>(kFrameMagic & 0xFF));
  out.push_back(static_cast<std::uint8_t>(kFrameMagic >> 8));
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<FrameView> decode_frame(BytesView data) {
  if (data.size() < kFrameHeaderSize) {
    return Error{Errc::protocol_error, "frame shorter than header"};
  }
  const std::uint16_t magic = static_cast<std::uint16_t>(
      data[0] | (static_cast<std::uint16_t>(data[1]) << 8));
  if (magic != kFrameMagic) {
    return Error{Errc::protocol_error, "bad frame magic"};
  }
  const std::uint8_t version = data[2];
  if (version == 0 || version > kFrameVersion) {
    return Error{Errc::protocol_error,
                 "frame version " + std::to_string(version) +
                     " newer than supported " + std::to_string(kFrameVersion)};
  }
  const std::uint8_t kind = data[3];
  if (kind < static_cast<std::uint8_t>(FrameKind::datagram) ||
      kind > static_cast<std::uint8_t>(FrameKind::channel_pong)) {
    return Error{Errc::protocol_error, "unknown frame kind"};
  }
  FrameView view;
  view.kind = static_cast<FrameKind>(kind);
  view.version = version;
  view.payload = data.subspan(kFrameHeaderSize);
  return view;
}

}  // namespace ph::proto
