#include "proto/codec.hpp"

namespace ph::proto {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::bytes(BytesView v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::str_list(const std::vector<std::string>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) str(s);
}

Result<void> Reader::need(std::size_t n) {
  if (remaining() < n) {
    return Error{Errc::protocol_error, "truncated message"};
  }
  return ok();
}

Result<std::uint8_t> Reader::u8() {
  if (auto r = need(1); !r) return r.error();
  return data_[pos_++];
}

Result<std::uint16_t> Reader::u16() {
  if (auto r = need(2); !r) return r.error();
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<std::uint32_t> Reader::u32() {
  if (auto r = need(4); !r) return r.error();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> Reader::u64() {
  if (auto r = need(8); !r) return r.error();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::string> Reader::str() {
  auto len = u32();
  if (!len) return len.error();
  if (auto r = need(*len); !r) return r.error();
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return out;
}

Result<Bytes> Reader::bytes() {
  auto len = u32();
  if (!len) return len.error();
  if (auto r = need(*len); !r) return r.error();
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

Result<std::vector<std::string>> Reader::str_list() {
  auto count = u32();
  if (!count) return count.error();
  // Each entry needs at least its 4-byte length prefix; reject counts that
  // could not possibly fit (defends against hostile length fields).
  if (*count > remaining() / 4) {
    return Error{Errc::protocol_error, "implausible list length"};
  }
  std::vector<std::string> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto s = str();
    if (!s) return s.error();
    out.push_back(std::move(*s));
  }
  return out;
}

}  // namespace ph::proto
