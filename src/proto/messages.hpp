// The PeerHood Community application protocol.
//
// Table 6 of the thesis lists the client request opcodes (PS_*) and the MSC
// figures 11–17 add three more (PS_GETTRUSTEDFRIEND, PS_CHECKTRUSTED,
// PS_GETSHAREDCONTENT) plus the textual statuses NO_MEMBERS_YET,
// NOT_TRUSTED_YET, SUCCESSFULLY_WRITTEN and UNSUCCESSFULL. This header
// reproduces that protocol: one request/response pair per operation.
//
// Like the thesis' implementation — which "packages the desired information
// into buffers and transmits" — requests and responses are flat structs
// with every field always encoded; the opcode says which fields carry
// meaning. This keeps the server dispatch table (Table 6) one switch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proto/codec.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::proto {

/// Client request opcodes (thesis Table 6 + MSC figures 15/16).
enum class Opcode : std::uint8_t {
  ps_get_online_member_list = 1,  ///< PS_GETONLINEMEMBERLIST (Fig 11)
  ps_get_interest_list = 2,       ///< PS_GETINTERESTLIST (Fig 12)
  ps_get_interested_member_list = 3,  ///< PS_GETINTERESTEDMEMBERLIST
  ps_get_profile = 4,             ///< PS_GETPROFILE (Fig 13)
  ps_add_profile_comment = 5,     ///< PS_ADDPROFILECOMMENT (Fig 14)
  ps_check_member_id = 6,         ///< PS_CHECKMEMBERID
  ps_msg = 7,                     ///< PS_MSG (Fig 17)
  ps_get_shared_content = 8,      ///< PS_SHAREDCONTENT (Fig 16)
  ps_get_trusted_friends = 9,     ///< PS_GETTRUSTEDFRIEND (Fig 15)
  ps_check_trusted = 10,          ///< PS_CHECKTRUSTED (Fig 16)
  ps_get_content = 11,            ///< trusted file download ("use them if needed")
  /// Ranged variant of ps_get_content: returns `length` bytes of the file
  /// starting at `offset`, plus the total size. Large transfers pull the
  /// file chunk by chunk over one seamless session, so a mid-transfer
  /// handover retransmits at most one chunk.
  ps_get_content_chunk = 12,
};

std::string_view to_string(Opcode op) noexcept;

/// Response statuses; names follow the thesis' wire strings.
enum class Status : std::uint8_t {
  ok = 0,
  no_members_yet = 1,        ///< NO_MEMBERS_YET — target member not local
  not_trusted_yet = 2,       ///< NOT_TRUSTED_YET — requester lacks trust
  successfully_written = 3,  ///< SUCCESSFULLY_WRITTEN — mail stored
  unsuccessful = 4,          ///< UNSUCCESSFULL (sic in the thesis)
};

std::string_view to_string(Status status) noexcept;

/// A profile comment as stored and transferred (Fig 14).
struct CommentData {
  std::string author;
  std::string text;
  std::uint64_t at_us = 0;  ///< virtual time the comment was written

  friend bool operator==(const CommentData&, const CommentData&) = default;
};

/// The profile payload of PS_GETPROFILE (Fig 13): profile information,
/// interest list, trusted-friends list and comments travel together.
struct ProfileData {
  std::string member_id;
  std::string display_name;
  std::uint32_t age = 0;
  std::string about;
  std::vector<std::string> interests;
  std::vector<std::string> trusted_friends;
  std::vector<CommentData> comments;
  std::vector<std::string> visitors;

  friend bool operator==(const ProfileData&, const ProfileData&) = default;
};

/// One shared file in a PS_SHAREDCONTENT listing.
struct SharedItemData {
  std::string name;
  std::uint64_t size_bytes = 0;

  friend bool operator==(const SharedItemData&, const SharedItemData&) = default;
};

/// A mail message (PS_MSG, Fig 17): receiver, sender, subject and body.
struct MailData {
  std::string receiver;
  std::string sender;
  std::string subject;
  std::string body;
  std::uint64_t sent_at_us = 0;

  friend bool operator==(const MailData&, const MailData&) = default;
};

/// A client request. `requester` is the sending member's id (the thesis
/// sends the client's username so the server can record profile visitors
/// and enforce trust).
struct Request {
  Opcode op = Opcode::ps_get_online_member_list;
  std::string requester;
  std::string member_id;  ///< target member, where the op takes one
  std::string argument;   ///< interest / comment text / content name
  MailData mail;          ///< for ps_msg
  std::uint64_t offset = 0;  ///< ps_get_content_chunk: first byte wanted
  std::uint64_t length = 0;  ///< ps_get_content_chunk: chunk size
  /// Trace context: the caller's RPC span id, so the server's handling
  /// span joins the caller's tree across the radio. 0 = untraced. Declared
  /// last to keep positional aggregate initializers working; on the wire
  /// it rides right after the opcode.
  std::uint64_t trace_parent = 0;

  friend bool operator==(const Request&, const Request&) = default;
};

/// A server response; `op` echoes the request's opcode.
struct Response {
  Opcode op = Opcode::ps_get_online_member_list;
  Status status = Status::ok;
  std::vector<std::string> names;      ///< member/interest/friend lists
  ProfileData profile;                 ///< ps_get_profile
  std::vector<SharedItemData> items;   ///< ps_get_shared_content
  Bytes content;                       ///< ps_get_content(_chunk) payload
  std::uint64_t content_total = 0;     ///< ps_get_content_chunk: file size

  friend bool operator==(const Response&, const Response&) = default;
};

Bytes encode(const Request& request);
Bytes encode(const Response& response);
Result<Request> decode_request(BytesView data);
Result<Response> decode_response(BytesView data);

}  // namespace ph::proto
