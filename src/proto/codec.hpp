// Binary wire codec: little-endian fixed-width integers, length-prefixed
// strings and vectors. Reader returns Result so malformed/truncated input
// from the network surfaces as Errc::protocol_error, never UB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::proto {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void str(std::string_view v);
  void bytes(BytesView v);
  void str_list(const std::vector<std::string>& v);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::string> str();
  Result<Bytes> bytes();
  Result<std::vector<std::string>> str_list();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  Result<void> need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace ph::proto
