// The PeerHood daemon-to-daemon control protocol.
//
// After device discovery finds a neighbour, the local PHD queries that
// neighbour's PHD for its advertised services (thesis §4.3 "Service
// Discovery") and pings known neighbours between inquiry rounds ("Active
// monitoring of a device"). These exchanges travel as connectionless
// datagrams on the daemon's well-known port; lost datagrams are retried by
// the daemon with a timeout.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::proto {

enum class DaemonOp : std::uint8_t {
  service_query = 1,  ///< "which PeerHood services do you run?"
  service_reply = 2,  ///< advertisement: device name + service list
  ping = 3,           ///< liveness probe between inquiry rounds
  pong = 4,
};

std::string_view to_string(DaemonOp op) noexcept;

/// One advertised service: name (e.g. "PeerHoodCommunity"), the port its
/// server listens on, and free-form attributes.
struct ServiceInfoData {
  std::string name;
  std::uint16_t port = 0;
  std::map<std::string, std::string> attributes;

  friend bool operator==(const ServiceInfoData&, const ServiceInfoData&) = default;
};

struct DaemonMessage {
  DaemonOp op = DaemonOp::ping;
  std::uint32_t token = 0;  ///< matches replies to requests
  /// Trace context: the sender's span id, so the receiving daemon can
  /// parent its handling under the remote operation. 0 = untraced.
  std::uint64_t trace_parent = 0;
  std::string device_name;
  std::vector<ServiceInfoData> services;

  friend bool operator==(const DaemonMessage&, const DaemonMessage&) = default;
};

Bytes encode(const DaemonMessage& message);
Result<DaemonMessage> decode_daemon_message(BytesView data);

}  // namespace ph::proto
