// Versioned wire framing for real transport substrates.
//
// The simulated medium delivers typed, bounded messages, so the PeerHood
// wire formats (proto::DaemonMessage, the session wire) could ride it
// bare. A real socket hands the receiver raw bytes: every frame that
// crosses a socket therefore carries this explicit envelope —
//
//   offset  size  field
//   0       2     magic   0x5048 ("PH", little-endian)
//   2       1     version (kFrameVersion; receivers reject newer)
//   3       1     kind    (FrameKind)
//   4       ...   kind-specific payload
//
// — so both substrates parse *identically* above the envelope: the bytes
// handed to decode_daemon_message / decode_session_wire are byte-for-byte
// the same whether they crossed the simulated medium or a socket, and the
// version octet gates wire evolution between daemon builds that share a
// loopback directory. decode_frame rejects bad magic, future versions and
// unknown kinds as Errc::protocol_error, never UB.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::proto {

inline constexpr std::uint16_t kFrameMagic = 0x5048;  // "PH"
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 4;

/// What a socket frame carries. Values are wire-stable; add new kinds at
/// the end and bump kFrameVersion when semantics change.
enum class FrameKind : std::uint8_t {
  datagram = 1,      ///< connectionless: u32 src, u16 dst port, payload
  channel_open = 2,  ///< stream handshake: u32 src, u16 dst port
  channel_accept = 3,///< stream handshake reply: u32 acceptor device
  channel_reject = 4,///< stream handshake reply: u8 errc ordinal
  channel_data = 5,  ///< one ordered channel message: payload
  channel_ping = 6,  ///< transport RTT probe: u64 sender wall-clock µs
  channel_pong = 7,  ///< probe reply: the ping's u64 echoed verbatim
};

std::string_view to_string(FrameKind kind) noexcept;

/// A decoded envelope; `payload` views into the caller's buffer.
struct FrameView {
  FrameKind kind = FrameKind::datagram;
  std::uint8_t version = kFrameVersion;
  BytesView payload;
};

/// Prepends the versioned header to `payload`.
Bytes encode_frame(FrameKind kind, BytesView payload);

/// Validates magic/version/kind and returns the payload view.
Result<FrameView> decode_frame(BytesView data);

}  // namespace ph::proto
