// Core PeerHood types: devices and services.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/tech.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace ph::peerhood {

/// A PeerHood device identity. In the real middleware devices are known by
/// their technology addresses (BD_ADDR, IP); the simulator gives every
/// physical device one id, and per-technology reachability lives below.
using DeviceId = net::NodeId;

/// One service registered in a PHD (thesis §4.2.1): name, the port its
/// server listens on, and free-form attributes shown in service listings.
struct ServiceInfo {
  std::string name;
  net::Port port = 0;
  std::map<std::string, std::string> attributes;

  friend bool operator==(const ServiceInfo&, const ServiceInfo&) = default;
};

/// A neighbourhood entry maintained by the PHD: everything the daemon has
/// learned about one remote device (thesis §4.2.1: "maintains a list of
/// neighbor devices as well as list of local and remote services").
struct DeviceInfo {
  DeviceId id = net::kInvalidNode;
  std::string name;
  /// Technologies over which this device has been discovered.
  std::vector<net::Technology> technologies;
  /// Services advertised by the remote PHD.
  std::vector<ServiceInfo> services;
  /// Virtual time the device was last heard from (inquiry hit or pong).
  sim::Time last_seen = 0;

  bool has_technology(net::Technology tech) const {
    for (net::Technology t : technologies) {
      if (t == tech) return true;
    }
    return false;
  }

  const ServiceInfo* find_service(std::string_view service_name) const {
    for (const ServiceInfo& s : services) {
      if (s.name == service_name) return &s;
    }
    return nullptr;
  }
};

}  // namespace ph::peerhood
