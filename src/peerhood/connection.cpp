#include "peerhood/connection.hpp"

#include "peerhood/session_state.hpp"

namespace ph::peerhood {

bool Connection::open() const noexcept { return state_ && !state_->closed; }

DeviceId Connection::remote_device() const noexcept {
  return state_ ? state_->peer : net::kInvalidNode;
}

std::uint64_t Connection::session_id() const noexcept {
  return state_ ? state_->id : 0;
}

net::Technology Connection::current_technology() const noexcept {
  return state_ && state_->channel.valid() ? state_->channel.technology()
                                           : net::Technology::bluetooth;
}

int Connection::handover_count() const noexcept {
  return state_ ? state_->handovers : 0;
}

void Connection::on_message(std::function<void(BytesView)> handler) {
  if (state_) state_->on_message = std::move(handler);
}

void Connection::on_close(std::function<void(const Error&)> handler) {
  if (state_) state_->on_close = std::move(handler);
}

void Connection::send(BytesView payload) {
  if (state_) state_->send_payload(Bytes(payload.begin(), payload.end()));
}

void Connection::close() {
  if (state_) state_->graceful_close();
}

}  // namespace ph::peerhood
