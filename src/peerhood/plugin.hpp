// PeerHood network plugins (thesis §4.2.3).
//
// "Unique plugins for different network technologies have been implemented
// and they are loaded dynamically by PHD and/or PeerHood Library." Each
// plugin adapts one radio technology to the uniform interface the daemon
// and library use: discovery, datagrams (daemon control traffic) and
// connection establishment. The simulator's Adapter already speaks that
// vocabulary, so the plugins are thin adapters over it — their value is the
// uniform interface, the preference ordering and per-technology identity,
// exactly the role the thesis assigns them.
#pragma once

#include <memory>
#include <string>

#include "net/adapter.hpp"
#include "net/medium.hpp"

namespace ph::peerhood {

class NetworkPlugin {
 public:
  virtual ~NetworkPlugin() = default;

  /// Plugin display name: "BTPlugin", "WLANPlugin", "GPRSPlugin".
  virtual const std::string& name() const = 0;

  virtual net::Technology technology() const = 0;
  virtual const net::TechProfile& profile() const = 0;

  /// The radio this plugin drives.
  virtual net::Adapter& adapter() = 0;
  virtual const net::Adapter& adapter() const = 0;

  /// Lower value = preferred for data when signals are comparable. The
  /// thesis prefers free short-range links (Bluetooth/WLAN) over paid GPRS.
  virtual int preference() const = 0;
};

/// Shared implementation: a plugin bound to one simulated adapter.
class AdapterPlugin : public NetworkPlugin {
 public:
  AdapterPlugin(std::string name, net::Adapter& adapter, int preference)
      : name_(std::move(name)), adapter_(adapter), preference_(preference) {}

  const std::string& name() const override { return name_; }
  net::Technology technology() const override { return adapter_.technology(); }
  const net::TechProfile& profile() const override { return adapter_.profile(); }
  net::Adapter& adapter() override { return adapter_; }
  const net::Adapter& adapter() const override { return adapter_; }
  int preference() const override { return preference_; }

 private:
  std::string name_;
  net::Adapter& adapter_;
  int preference_;
};

/// BTPlugin: L2CAP-style reliable links, no BNEP/RFCOMM/PPP overhead
/// (thesis §4.2.3). Preferred for local data: free and reliable.
std::unique_ptr<NetworkPlugin> make_bt_plugin(net::Adapter& adapter);

/// WLANPlugin: IP with broadcast-based discovery, direct device-to-device.
std::unique_ptr<NetworkPlugin> make_wlan_plugin(net::Adapter& adapter);

/// GPRSPlugin: IP via the operator gateway proxy; last resort (metered).
std::unique_ptr<NetworkPlugin> make_gprs_plugin(net::Adapter& adapter);

/// Creates the plugin matching the adapter's technology.
std::unique_ptr<NetworkPlugin> make_plugin(net::Adapter& adapter);

}  // namespace ph::peerhood
