// PeerHood network plugins (thesis §4.2.3).
//
// "Unique plugins for different network technologies have been implemented
// and they are loaded dynamically by PHD and/or PeerHood Library." Each
// plugin adapts one radio technology to the uniform interface the daemon
// and library use: discovery, datagrams (daemon control traffic) and
// channel establishment. Since the transport split, that vocabulary is
// transport::Endpoint — the same plugin code drives a simulated adapter
// (SimTransport) or a real socket pair (SocketTransport); the plugins'
// value is the uniform interface, the preference ordering and
// per-technology identity, exactly the role the thesis assigns them.
#pragma once

#include <memory>
#include <string>

#include "transport/transport.hpp"

namespace ph::net {
class Adapter;
}

namespace ph::peerhood {

class NetworkPlugin {
 public:
  virtual ~NetworkPlugin() = default;

  /// Plugin display name: "BTPlugin", "WLANPlugin", "GPRSPlugin".
  virtual const std::string& name() const = 0;

  virtual net::Technology technology() const = 0;
  virtual const net::TechProfile& profile() const = 0;

  /// The transport endpoint this plugin drives.
  virtual transport::Endpoint& endpoint() = 0;
  virtual const transport::Endpoint& endpoint() const = 0;

  /// Lower value = preferred for data when signals are comparable. The
  /// thesis prefers free short-range links (Bluetooth/WLAN) over paid GPRS.
  virtual int preference() const = 0;
};

/// Shared implementation: a plugin bound to one transport endpoint. The
/// endpoint is either borrowed from the transport (usual case) or owned by
/// the plugin (legacy adapter-wrapping factories below).
class EndpointPlugin : public NetworkPlugin {
 public:
  EndpointPlugin(std::string name, transport::Endpoint& endpoint,
                 int preference)
      : name_(std::move(name)), endpoint_(&endpoint), preference_(preference) {}
  EndpointPlugin(std::string name, std::unique_ptr<transport::Endpoint> owned,
                 int preference)
      : name_(std::move(name)),
        owned_(std::move(owned)),
        endpoint_(owned_.get()),
        preference_(preference) {}

  const std::string& name() const override { return name_; }
  net::Technology technology() const override {
    return endpoint_->technology();
  }
  const net::TechProfile& profile() const override {
    return endpoint_->profile();
  }
  transport::Endpoint& endpoint() override { return *endpoint_; }
  const transport::Endpoint& endpoint() const override { return *endpoint_; }
  int preference() const override { return preference_; }

 private:
  std::string name_;
  std::unique_ptr<transport::Endpoint> owned_;
  transport::Endpoint* endpoint_;
  int preference_;
};

/// BTPlugin: L2CAP-style reliable links, no BNEP/RFCOMM/PPP overhead
/// (thesis §4.2.3). Preferred for local data: free and reliable.
std::unique_ptr<NetworkPlugin> make_bt_plugin(transport::Endpoint& endpoint);

/// WLANPlugin: IP with broadcast-based discovery, direct device-to-device.
std::unique_ptr<NetworkPlugin> make_wlan_plugin(transport::Endpoint& endpoint);

/// GPRSPlugin: IP via the operator gateway proxy; last resort (metered).
std::unique_ptr<NetworkPlugin> make_gprs_plugin(transport::Endpoint& endpoint);

/// Creates the plugin matching the endpoint's technology.
std::unique_ptr<NetworkPlugin> make_plugin(transport::Endpoint& endpoint);

/// Legacy adapter overloads: wrap a bare simulated net::Adapter in an
/// owned endpoint (transport::wrap_adapter). Prefer the Endpoint overloads
/// — these exist so pre-transport call sites keep compiling.
std::unique_ptr<NetworkPlugin> make_bt_plugin(net::Adapter& adapter);
std::unique_ptr<NetworkPlugin> make_wlan_plugin(net::Adapter& adapter);
std::unique_ptr<NetworkPlugin> make_gprs_plugin(net::Adapter& adapter);
std::unique_ptr<NetworkPlugin> make_plugin(net::Adapter& adapter);

}  // namespace ph::peerhood
