#include "peerhood/library.hpp"

#include <algorithm>

#include "peerhood/session_state.hpp"
#include "util/log.hpp"

namespace ph::peerhood {

PeerHood::PeerHood(Daemon& daemon) : daemon_(daemon) {}

PeerHood::~PeerHood() {
  // Sessions that outlive the library: release their callbacks. Accept
  // handlers routinely keep the Connection alive from inside its own
  // on_message (the keepalive idiom), which is a reference cycle through
  // SessionState that only the session's end — or this — can break.
  auto release = [](const std::weak_ptr<detail::SessionState>& weak_session) {
    if (auto session = weak_session.lock()) {
      session->on_message = nullptr;
      session->on_close = nullptr;
      session->on_ended = nullptr;
    }
  };
  for (auto& [name, endpoint] : endpoints_) {
    for (auto& plugin : daemon_.plugins()) {
      plugin->endpoint().stop_listen(endpoint->info.port);
    }
    for (auto& [id, weak_session] : endpoint->sessions) release(weak_session);
  }
  for (auto& weak_session : detached_sessions_) release(weak_session);
}

Result<void> PeerHood::register_service(
    const std::string& name, std::map<std::string, std::string> attributes,
    AcceptHandler on_accept) {
  if (endpoints_.contains(name)) {
    return Error{Errc::service_already_registered, name};
  }
  ServiceInfo info;
  info.name = name;
  info.port = allocate_port();
  if (info.port == 0) {
    return Error{Errc::invalid_argument, "no free service ports"};
  }
  info.attributes = std::move(attributes);
  if (auto r = daemon_.register_service(info); !r) return r;

  auto endpoint = std::make_shared<ServiceEndpoint>();
  endpoint->info = info;
  endpoint->on_accept = std::move(on_accept);
  std::weak_ptr<ServiceEndpoint> weak = endpoint;
  for (auto& plugin : daemon_.plugins()) {
    plugin->endpoint().listen(
        info.port, [this, weak](transport::Channel channel) {
          if (auto ep = weak.lock()) {
            accept_channel(ep, channel);
          } else {
            channel.close();
          }
        });
  }
  endpoints_.emplace(name, std::move(endpoint));
  return ok();
}

net::Port PeerHood::allocate_port() {
  // Application ports live in [1000, 65535] (net/types.hpp). A long-lived
  // device registering/unregistering services for weeks walks next_port_
  // off the end; wrap instead of overflowing into the daemon's control
  // range, and skip ports a live endpoint still listens on.
  constexpr net::Port kFirst = 1000;
  constexpr net::Port kLast = 65535;
  for (std::uint32_t scanned = 0; scanned <= kLast - kFirst; ++scanned) {
    if (next_port_ < kFirst) next_port_ = kFirst;
    const net::Port port = next_port_;
    next_port_ = port == kLast ? kFirst : static_cast<net::Port>(port + 1);
    bool taken = false;
    for (const auto& [name, endpoint] : endpoints_) {
      if (endpoint->info.port == port) {
        taken = true;
        break;
      }
    }
    if (!taken) return port;
  }
  return 0;
}

Result<void> PeerHood::unregister_service(const std::string& name) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    return Error{Errc::service_not_found, name};
  }
  for (auto& plugin : daemon_.plugins()) {
    plugin->endpoint().stop_listen(it->second->info.port);
  }
  (void)daemon_.unregister_service(name);
  // The endpoint dies, its live sessions don't — remember them so the
  // destructor can still release their callbacks.
  for (auto& [id, weak_session] : it->second->sessions) {
    if (!weak_session.expired()) detached_sessions_.push_back(weak_session);
  }
  endpoints_.erase(it);
  return ok();
}

void PeerHood::accept_channel(const std::shared_ptr<ServiceEndpoint>& endpoint,
                              transport::Channel channel) {
  // The first frame decides: HELLO opens a session, RESUME reattaches one.
  // Channel is a value handle, so the captured copy keeps it alive until
  // that frame arrives.
  auto pending = std::make_shared<transport::Channel>(channel);
  std::weak_ptr<ServiceEndpoint> weak_ep = endpoint;
  channel.on_receive([this, weak_ep, pending](BytesView data) {
    auto ep = weak_ep.lock();
    if (!ep) {
      pending->close();
      return;
    }
    auto wire = detail::decode_session_wire(data);
    if (!wire) {
      PH_LOG(warn, "phlib") << "dropping channel with malformed handshake";
      pending->close();
      return;
    }
    switch (wire->op) {
      case detail::SessionOp::hello: {
        // This handler runs under the client's HELLO flight span (the
        // substrate pushes it around delivery), so the accept span — and
        // everything the application does from on_accept — parents under
        // the remote device's send: the cross-device receive-side span.
        obs::Trace& journal = daemon_.transport().trace();
        const obs::SpanId accept_span =
            journal.begin_span("peerhood.session.accept",
                               daemon_.scheduler().now(), daemon_.self(),
                               "hello");
        obs::Trace::Scope causal(journal, accept_span);
        auto state = std::make_shared<detail::SessionState>();
        state->daemon = &daemon_;
        state->id = wire->session;
        state->self = daemon_.self();
        state->peer = pending->remote_node();
        state->service_port = ep->info.port;
        state->initiator = false;
        state->established = true;
        state->attach_channel(*pending);
        ep->sessions[state->id] = state;
        state->on_ended = [weak_ep](std::uint64_t id) {
          if (auto e = weak_ep.lock()) e->sessions.erase(id);
        };
        if (ep->on_accept) ep->on_accept(Connection{state});
        journal.end_span(accept_span, daemon_.scheduler().now());
        break;
      }
      case detail::SessionOp::resume: {
        auto found = ep->sessions.find(wire->session);
        auto state = found == ep->sessions.end()
                         ? nullptr
                         : found->second.lock();
        if (!state || state->closed) {
          // The HELLO may have been lost in a channel break before it
          // arrived (the client connected and the radio died within the
          // handshake window). Treat the RESUME as an implicit session
          // open: the client retransmits everything unacknowledged anyway.
          PH_LOG(debug, "phlib")
              << "RESUME for unknown session " << wire->session
              << "; opening it implicitly";
          auto fresh = std::make_shared<detail::SessionState>();
          fresh->daemon = &daemon_;
          fresh->id = wire->session;
          fresh->self = daemon_.self();
          fresh->peer = pending->remote_node();
          fresh->service_port = ep->info.port;
          fresh->initiator = false;
          fresh->established = true;
          fresh->attach_channel(*pending);
          ep->sessions[fresh->id] = fresh;
          fresh->on_ended = [weak_ep](std::uint64_t id) {
            if (auto e = weak_ep.lock()) e->sessions.erase(id);
          };
          fresh->handle_wire(*wire);  // answers with RESUME_ACK
          if (ep->on_accept) ep->on_accept(Connection{fresh});
          break;
        }
        state->scheduler().cancel(state->server_wait_timer);
        state->attach_channel(*pending);
        state->established = true;
        ++state->handovers;
        // Let the normal wire path answer with RESUME_ACK + retransmit.
        state->handle_wire(*wire);
        break;
      }
      default:
        PH_LOG(warn, "phlib") << "unexpected pre-handshake frame";
        pending->close();
        break;
    }
  });
}

void PeerHood::connect(DeviceId device, const std::string& service,
                       ConnectOptions options, ConnectCallback done) {
  auto info = daemon_.device(device);
  if (!info) {
    done(info.error());
    return;
  }
  const ServiceInfo* remote = info->find_service(service);
  if (remote == nullptr) {
    done(Error{Errc::service_not_found,
               service + " not advertised by device " + std::to_string(device)});
    return;
  }

  auto state = std::make_shared<detail::SessionState>();
  state->daemon = &daemon_;
  state->id = daemon_.transport().rng().uniform_int(1, UINT64_MAX);
  state->self = daemon_.self();
  state->peer = device;
  state->service_port = remote->port;
  state->initiator = true;
  state->options = options;

  // Radios ranked best-signal-first, free technologies preferred on ties.
  struct Candidate {
    NetworkPlugin* plugin;
    double signal;
  };
  std::vector<Candidate> ranked;
  for (auto& plugin : daemon_.plugins()) {
    if (options.force_technology &&
        plugin->technology() != *options.force_technology) {
      continue;
    }
    if (!info->has_technology(plugin->technology())) continue;
    const double s = plugin->endpoint().signal_to(device);
    if (s > 0.0) ranked.push_back({plugin.get(), s});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.signal != b.signal) return a.signal > b.signal;
              return a.plugin->preference() < b.plugin->preference();
            });
  if (ranked.empty()) {
    done(Error{Errc::device_unreachable,
               "no radio reaches device " + std::to_string(device)});
    return;
  }
  std::vector<NetworkPlugin*> candidates;
  candidates.reserve(ranked.size());
  for (const Candidate& c : ranked) candidates.push_back(c.plugin);
  try_connect(std::move(state), std::move(candidates), 0,
              Error{Errc::connect_failed, "no radio attempted"},
              std::move(done));
}

void PeerHood::try_connect(std::shared_ptr<detail::SessionState> state,
                           std::vector<NetworkPlugin*> candidates,
                           std::size_t index, Error last_error,
                           ConnectCallback done) {
  if (index >= candidates.size()) {
    // Surface the final radio's failure (e.g. radio_busy is transient and
    // callers may want to retry shortly).
    done(std::move(last_error));
    return;
  }
  NetworkPlugin* plugin = candidates[index];
  plugin->endpoint().connect(
      state->peer, state->service_port,
      [this, state, candidates = std::move(candidates), index,
       done = std::move(done)](Result<transport::Channel> channel) mutable {
        if (!channel) {
          Error error = std::move(channel).error();
          try_connect(std::move(state), std::move(candidates), index + 1,
                      std::move(error), std::move(done));
          return;
        }
        state->attach_channel(*channel);
        state->established = true;
        detail::SessionWire hello;
        hello.op = detail::SessionOp::hello;
        hello.session = state->id;
        state->send_wire(hello);
        state->arm_monitor();
        done(Connection{state});
      });
}

}  // namespace ph::peerhood
