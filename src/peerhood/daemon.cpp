#include "peerhood/daemon.hpp"

#include <algorithm>
#include <cassert>

#include "proto/daemon.hpp"
#include "transport/sim_transport.hpp"
#include "util/log.hpp"
#include "obs/prof.hpp"

namespace ph::peerhood {

namespace {

proto::ServiceInfoData to_wire(const ServiceInfo& service) {
  return proto::ServiceInfoData{service.name, service.port, service.attributes};
}

ServiceInfo from_wire(const proto::ServiceInfoData& data) {
  return ServiceInfo{data.name, data.port, data.attributes};
}

}  // namespace

Daemon::Daemon(transport::Transport& transport, DeviceId self,
               std::string device_name, DaemonConfig config)
    : transport_(transport),
      scheduler_(transport.scheduler()),
      self_(self),
      device_name_(std::move(device_name)),
      config_(config),
      jitter_rng_(transport.rng().fork()) {
  obs::Registry& registry = transport_.registry();
  trace_ = &transport_.trace();
  metric_prefix_ = "peerhood.daemon.d" + std::to_string(self_) + ".";
  const std::string& prefix = metric_prefix_;
  c_inquiries_started_ = &registry.counter(prefix + "inquiries_started");
  c_devices_found_ = &registry.counter(prefix + "devices_found");
  c_service_queries_ = &registry.counter(prefix + "service_queries");
  c_service_replies_ = &registry.counter(prefix + "service_replies");
  c_pings_sent_ = &registry.counter(prefix + "pings_sent");
  c_pongs_received_ = &registry.counter(prefix + "pongs_received");
  c_neighbours_appeared_ = &registry.counter(prefix + "neighbours_appeared");
  c_neighbours_disappeared_ =
      &registry.counter(prefix + "neighbours_disappeared");
  c_announcements_sent_ = &registry.counter(prefix + "announcements_sent");
  g_neighbour_count_ = &registry.gauge(prefix + "neighbour_count");
  g_table_staleness_ = &registry.gauge(prefix + "table_staleness_us");
  h_discovery_ = &registry.histogram(prefix + "discovery_us");
}

Daemon::Daemon(std::unique_ptr<transport::Transport> owned, DeviceId self,
               std::string device_name, DaemonConfig config)
    : Daemon(*owned, self, std::move(device_name), config) {
  owned_transport_ = std::move(owned);
}

Daemon::Daemon(net::Medium& medium, DeviceId self, std::string device_name,
               DaemonConfig config)
    : Daemon(std::make_unique<transport::SimTransport>(medium), self,
             std::move(device_name), config) {}

obs::Snapshot Daemon::stats() const {
  return transport_.registry().snapshot(metric_prefix_);
}

std::uint32_t Daemon::allocate_token() {
  // Wraps safely: token 0 is reserved for unsolicited announcements, and
  // tokens still owned by an in-flight query or ping are skipped so a
  // stale timeout can never collide with a fresh exchange.
  for (;;) {
    const std::uint32_t token = next_token_++;
    if (token == 0) continue;
    if (pending_queries_.contains(token)) continue;
    bool in_use = false;
    for (const auto& [id, pending] : pending_pings_) {
      if (pending == token) {
        in_use = true;
        break;
      }
    }
    if (!in_use) return token;
  }
}

sim::Backoff Daemon::retry_backoff(sim::Duration base) const {
  sim::Backoff backoff;
  backoff.base = base;
  backoff.multiplier = config_.retry_backoff;
  backoff.cap = std::max(config_.retry_cap, base);
  backoff.jitter = config_.retry_jitter;
  return backoff;
}

Daemon::~Daemon() { stop(); }

Result<void> Daemon::add_plugin(std::unique_ptr<NetworkPlugin> plugin) {
  if (plugin == nullptr) {
    return Error{Errc::invalid_argument, "null plugin"};
  }
  if (plugin->endpoint().device() != self_) {
    return Error{Errc::invalid_argument,
                 "plugin endpoint belongs to device " +
                     std::to_string(plugin->endpoint().device()) +
                     ", daemon runs on " + std::to_string(self_)};
  }
  bind_control_port(*plugin);
  plugins_.push_back(std::move(plugin));
  return ok();
}

NetworkPlugin* Daemon::plugin_for(net::Technology tech) {
  for (auto& plugin : plugins_) {
    if (plugin->technology() == tech) return plugin.get();
  }
  return nullptr;
}

void Daemon::bind_control_port(NetworkPlugin& plugin) {
  plugin.endpoint().bind(net::kDaemonPort,
                         [this, &plugin](DeviceId src, BytesView payload) {
                           on_daemon_datagram(plugin, src, payload);
                         });
}

Result<void> Daemon::start() {
  if (running_) return ok();
  if (plugins_.empty()) {
    return Error{Errc::state_error, "daemon has no network plugins"};
  }
  running_ = true;
  ++generation_;
  PH_LOG(info, "phd") << device_name_ << ": daemon started, "
                      << plugins_.size() << " plugin(s)";
  for (auto& plugin : plugins_) {
    // First scan starts immediately; later scans are timer-driven.
    run_inquiry(*plugin);
  }
  schedule_ping_round();
  return ok();
}

void Daemon::stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;  // orphan all pending periodic callbacks
  pending_queries_.clear();
  pending_pings_.clear();
}

Result<void> Daemon::restart() {
  stop();
  // Cold boot: the table is RAM-only in the real PHD and does not survive
  // a device blackout. Announced neighbours disappear with cause blackout
  // so applications (group engines) can tell eviction-by-restart from
  // eviction-by-churn.
  auto wiped = std::move(neighbours_);
  neighbours_.clear();
  for (auto& [id, neighbour] : wiped) {
    (void)id;
    if (!neighbour.announced) continue;
    c_neighbours_disappeared_->inc();
    notify(NeighbourEvent::Kind::disappeared, neighbour.info,
           GoneCause::blackout);
  }
  PH_LOG(info, "phd") << device_name_ << ": daemon cold-restarted, "
                      << wiped.size() << " neighbour(s) wiped";
  return start();
}

Result<void> Daemon::register_service(ServiceInfo service) {
  if (service.name.empty()) {
    return Error{Errc::invalid_argument, "service name must not be empty"};
  }
  if (local_services_.contains(service.name)) {
    return Error{Errc::service_already_registered, service.name};
  }
  PH_LOG(info, "phd") << device_name_ << ": registered service '"
                      << service.name << "' on port " << service.port;
  local_services_.emplace(service.name, std::move(service));
  announce_services();
  return ok();
}

Result<void> Daemon::unregister_service(const std::string& name) {
  if (local_services_.erase(name) == 0) {
    return Error{Errc::service_not_found, name};
  }
  announce_services();
  return ok();
}

Result<void> Daemon::update_service_attributes(
    const std::string& name, std::map<std::string, std::string> attributes) {
  auto it = local_services_.find(name);
  if (it == local_services_.end()) {
    return Error{Errc::service_not_found, name};
  }
  it->second.attributes = std::move(attributes);
  announce_services();
  return ok();
}

std::vector<ServiceInfo> Daemon::local_services() const {
  std::vector<ServiceInfo> out;
  out.reserve(local_services_.size());
  for (const auto& [name, service] : local_services_) out.push_back(service);
  return out;
}

std::vector<DeviceInfo> Daemon::devices() const {
  std::vector<DeviceInfo> out;
  for (const auto& [id, neighbour] : neighbours_) {
    if (neighbour.announced) out.push_back(neighbour.info);
  }
  return out;
}

Result<DeviceInfo> Daemon::device(DeviceId id) const {
  auto it = neighbours_.find(id);
  if (it == neighbours_.end() || !it->second.announced) {
    return Error{Errc::unknown_device, "device " + std::to_string(id)};
  }
  return it->second.info;
}

std::vector<std::pair<DeviceInfo, ServiceInfo>> Daemon::find_service(
    std::string_view service_name) const {
  std::vector<std::pair<DeviceInfo, ServiceInfo>> out;
  for (const auto& [id, neighbour] : neighbours_) {
    if (!neighbour.announced) continue;
    if (const ServiceInfo* s = neighbour.info.find_service(service_name)) {
      out.emplace_back(neighbour.info, *s);
    }
  }
  return out;
}

Daemon::MonitorId Daemon::monitor_all(NeighbourHandler handler) {
  const MonitorId id = next_monitor_++;
  monitors_.emplace(id, Monitor{net::kInvalidNode, std::move(handler)});
  return id;
}

Daemon::MonitorId Daemon::monitor_device(DeviceId device,
                                         NeighbourHandler handler) {
  const MonitorId id = next_monitor_++;
  monitors_.emplace(id, Monitor{device, std::move(handler)});
  return id;
}

void Daemon::unmonitor(MonitorId id) { monitors_.erase(id); }

void Daemon::notify(NeighbourEvent::Kind kind, const DeviceInfo& device,
                    GoneCause cause) {
  NeighbourEvent event;
  event.kind = kind;
  event.device = device;
  event.cause = cause;
  // Iterate a copy: handlers may (un)register monitors.
  for (const auto& [mid, monitor] : std::map(monitors_)) {
    (void)mid;
    if (monitor.device != net::kInvalidNode && monitor.device != device.id) {
      continue;
    }
    if (monitor.handler) monitor.handler(event);
  }
}

void Daemon::trigger_discovery() {
  for (auto& plugin : plugins_) run_inquiry(*plugin);
}

void Daemon::schedule_inquiry(NetworkPlugin& plugin, sim::Duration delay) {
  const std::uint64_t gen = generation_;
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_discovery);
  scheduler_.schedule(delay, [this, gen, &plugin] {
    if (!running_ || gen != generation_) return;
    run_inquiry(plugin);
  });
}

void Daemon::run_inquiry(NetworkPlugin& plugin) {
  c_inquiries_started_->inc();
  const std::uint64_t gen = generation_;
  PH_LOG(debug, "phd") << device_name_ << ": inquiry on " << plugin.name();
  const obs::SpanId span = trace_->begin_span("peerhood.inquiry",
                                              scheduler_.now(), self_,
                                              "inquiry");
  const sim::Time inquiry_start = scheduler_.now();
  obs::Trace::Scope scope(*trace_, span);  // parents the net.inquiry span
  plugin.endpoint().start_inquiry(
      [this, gen, span, inquiry_start, &plugin](std::vector<DeviceId> found) {
        h_discovery_->observe(
            static_cast<double>(scheduler_.now() - inquiry_start));
        {
          // Service queries fired off the results are causally part of
          // this discovery round.
          obs::Trace::Scope scope(*trace_, span);
          handle_inquiry_result(plugin, std::move(found));
        }
        trace_->end_span(span, scheduler_.now());
        if (running_ && gen == generation_) {
          schedule_inquiry(plugin, config_.inquiry_interval);
        }
      });
}

void Daemon::handle_inquiry_result(NetworkPlugin& plugin,
                                   std::vector<DeviceId> found) {
  c_devices_found_->inc(found.size());
  const net::Technology tech = plugin.technology();
  for (DeviceId id : found) {
    Neighbour& neighbour = neighbours_[id];
    neighbour.info.id = id;
    neighbour.info.last_seen = scheduler_.now();
    neighbour.missed_pings = 0;
    if (!neighbour.info.has_technology(tech)) {
      neighbour.info.technologies.push_back(tech);
      if (neighbour.announced) {
        notify(NeighbourEvent::Kind::updated, neighbour.info);
      }
    }
    const bool query_pending = std::any_of(
        pending_queries_.begin(), pending_queries_.end(),
        [id](const auto& entry) { return entry.second.target == id; });
    // Every inquiry hit refreshes the remote service list (one datagram per
    // device per scan) — services registered after the first discovery
    // become visible on the next scan ("Service Sharing", Table 3).
    if (!query_pending) {
      send_service_query(id, tech, config_.query_retries);
    }
  }
}

void Daemon::send_service_query(DeviceId target, net::Technology tech,
                                int attempts_left) {
  NetworkPlugin* plugin = plugin_for(tech);
  if (plugin == nullptr) return;
  const std::uint32_t token = allocate_token();
  c_service_queries_->inc();
  const obs::SpanId span = trace_->begin_span(
      "peerhood.service_query", scheduler_.now(), self_, "service_query");
  proto::DaemonMessage query;
  query.op = proto::DaemonOp::service_query;
  query.token = token;
  query.trace_parent = span;  // remote daemon parents its handling here
  query.device_name = device_name_;
  {
    obs::Trace::Scope scope(*trace_, span);  // parents the query datagram
    plugin->endpoint().send_datagram(target, net::kDaemonPort,
                                     proto::encode(query));
  }
  // High-latency technologies (GPRS routes every frame through the
  // operator gateway) need a longer reply window than the configured
  // default, or every reply would arrive "late" and be dropped.
  const net::TechProfile& profile = plugin->profile();
  sim::Duration round_trip = 2 * profile.base_latency;
  if (profile.via_gateway) round_trip += 4 * profile.gateway_latency;
  const sim::Duration base = std::max(config_.reply_timeout, 2 * round_trip);
  // Later attempts wait exponentially longer (capped, jittered): under a
  // burst-loss window hammering retries at a fixed cadence just feeds the
  // burst, while backed-off retries land after it passes.
  const int attempt = std::max(0, config_.query_retries - attempts_left);
  const sim::Duration timeout =
      retry_backoff(base).delay(attempt, jitter_rng_);
  PendingQuery pending;
  pending.target = target;
  pending.tech = tech;
  pending.attempts_left = attempts_left - 1;
  pending.span = span;
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_query);
  pending.timeout_event =
      scheduler_.schedule(timeout, [this, token] {
        auto it = pending_queries_.find(token);
        if (it == pending_queries_.end()) return;  // answered
        const PendingQuery timed_out = it->second;
        pending_queries_.erase(it);
        trace_->end_span(timed_out.span, scheduler_.now());
        if (timed_out.attempts_left > 0) {
          // Chain the retry under the attempt that timed out, so the
          // whole retry ladder reads as one tree in the trace.
          obs::Trace::Scope scope(*trace_, timed_out.span);
          send_service_query(timed_out.target, timed_out.tech,
                             timed_out.attempts_left);
        }
      });
  pending_queries_.emplace(token, pending);
}

void Daemon::on_daemon_datagram(NetworkPlugin& plugin, DeviceId src,
                                BytesView payload) {
  auto decoded = proto::decode_daemon_message(payload);
  if (!decoded) {
    PH_LOG(warn, "phd") << device_name_ << ": bad control datagram from "
                        << src << ": " << decoded.error().to_string();
    return;
  }
  const proto::DaemonMessage& message = *decoded;
  // Receive-side span: parented under the remote sender's span carried in
  // the message header (falls back to the datagram flight span the medium
  // pushed around this handler), so both devices share one tree.
  const obs::SpanId handle_span = trace_->begin_span_under(
      message.trace_parent, "peerhood.daemon.handle", scheduler_.now(), self_,
      std::string(proto::to_string(message.op)));
  obs::Trace::Scope handling(*trace_, handle_span);
  switch (message.op) {
    case proto::DaemonOp::service_query: {
      proto::DaemonMessage reply;
      reply.op = proto::DaemonOp::service_reply;
      reply.token = message.token;
      reply.trace_parent = handle_span;
      reply.device_name = device_name_;
      for (const auto& [name, service] : local_services_) {
        reply.services.push_back(to_wire(service));
      }
      plugin.endpoint().send_datagram(src, net::kDaemonPort,
                                      proto::encode(reply));
      break;
    }
    case proto::DaemonOp::service_reply: {
      if (message.token == 0) {
        // Unsolicited push announcement (WLAN broadcast): apply directly.
        apply_service_reply(plugin, src, message);
        break;
      }
      auto pending = pending_queries_.find(message.token);
      if (pending == pending_queries_.end()) break;  // late duplicate
      scheduler_.cancel(pending->second.timeout_event);
      trace_->end_span(pending->second.span, scheduler_.now());
      pending_queries_.erase(pending);
      c_service_replies_->inc();
      apply_service_reply(plugin, src, message);
      break;
    }
    case proto::DaemonOp::ping: {
      proto::DaemonMessage pong;
      pong.op = proto::DaemonOp::pong;
      pong.token = message.token;
      pong.trace_parent = handle_span;
      pong.device_name = device_name_;
      plugin.endpoint().send_datagram(src, net::kDaemonPort,
                                      proto::encode(pong));
      break;
    }
    case proto::DaemonOp::pong: {
      // Any pong from the device proves liveness — including one answering
      // an older round's ping that arrived after the next round started
      // (normal on high-latency technologies like GPRS, where the round
      // trip can exceed the ping interval).
      c_pongs_received_->inc();
      auto pending = pending_pings_.find(src);
      if (pending != pending_pings_.end() && pending->second == message.token) {
        pending_pings_.erase(pending);
      }
      auto it = neighbours_.find(src);
      if (it != neighbours_.end()) {
        it->second.missed_pings = 0;
        it->second.info.last_seen = scheduler_.now();
      }
      break;
    }
  }
  trace_->end_span(handle_span, scheduler_.now());
}

void Daemon::apply_service_reply(NetworkPlugin& plugin, DeviceId src,
                                 const proto::DaemonMessage& message) {
  Neighbour& neighbour = neighbours_[src];
  neighbour.info.id = src;
  neighbour.info.name = message.device_name;
  neighbour.info.last_seen = scheduler_.now();
  if (!neighbour.info.has_technology(plugin.technology())) {
    neighbour.info.technologies.push_back(plugin.technology());
  }
  std::vector<ServiceInfo> services;
  services.reserve(message.services.size());
  for (const auto& s : message.services) services.push_back(from_wire(s));
  // Any difference counts — new/removed services AND attribute edits
  // (applications may publish live data through attributes).
  const bool changed = services != neighbour.info.services;
  neighbour.info.services = std::move(services);
  neighbour.services_known = true;
  if (neighbour.announced && changed) {
    notify(NeighbourEvent::Kind::updated, neighbour.info);
  }
  announce_if_ready(neighbour);
}

void Daemon::announce_services() {
  proto::DaemonMessage announce;
  announce.op = proto::DaemonOp::service_reply;
  announce.token = 0;  // unsolicited
  announce.device_name = device_name_;
  for (const auto& [name, service] : local_services_) {
    announce.services.push_back(to_wire(service));
  }
  const Bytes payload = proto::encode(announce);
  for (auto& plugin : plugins_) {
    if (!plugin->profile().supports_broadcast) continue;
    plugin->endpoint().broadcast_datagram(net::kDaemonPort, payload);
    c_announcements_sent_->inc();
  }
}

void Daemon::schedule_ping_round() {
  const std::uint64_t gen = generation_;
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_ping);
  scheduler_.schedule(config_.ping_interval, [this, gen] {
    if (!running_ || gen != generation_) return;
    run_ping_round();
    schedule_ping_round();
  });
}

void Daemon::run_ping_round() {
  expire_stale_entries();
  // Any ping from the previous round still unanswered counts as missed.
  for (auto it = pending_pings_.begin(); it != pending_pings_.end();) {
    auto neighbour = neighbours_.find(it->first);
    it = pending_pings_.erase(it);
    if (neighbour == neighbours_.end()) continue;
    if (++neighbour->second.missed_pings >= config_.max_missed_pings) {
      declare_gone(neighbour->first, GoneCause::missed_pings);
    }
  }
  for (auto& [id, neighbour] : neighbours_) {
    if (!send_ping(id, 0)) {
      // Out of range on every technology: counts as a missed ping without
      // wasting a frame.
      if (++neighbour.missed_pings >= config_.max_missed_pings) {
        declare_gone(id, GoneCause::missed_pings);
        break;  // neighbours_ mutated; next round handles the rest
      }
    }
  }
  refresh_table_gauges();
}

bool Daemon::send_ping(DeviceId id, int attempt) {
  auto it = neighbours_.find(id);
  if (it == neighbours_.end()) return false;
  // Ping over the best-signal technology this device is known on.
  NetworkPlugin* best = nullptr;
  double best_signal = 0.0;
  for (auto& plugin : plugins_) {
    if (!it->second.info.has_technology(plugin->technology())) continue;
    const double s = plugin->endpoint().signal_to(id);
    if (s > best_signal) {
      best_signal = s;
      best = plugin.get();
    }
  }
  if (best == nullptr) return false;
  const std::uint32_t token = allocate_token();
  pending_pings_[id] = token;
  c_pings_sent_->inc();
  proto::DaemonMessage ping;
  ping.op = proto::DaemonOp::ping;
  ping.token = token;
  ping.device_name = device_name_;
  best->endpoint().send_datagram(id, net::kDaemonPort, proto::encode(ping));
  schedule_ping_retry(id, token, attempt);
  return true;
}

void Daemon::schedule_ping_retry(DeviceId id, std::uint32_t token,
                                 int attempt) {
  // In-round retries: a pong missing after the (backed-off) reply window
  // triggers another ping before the round closes, so one frame eaten by a
  // loss burst does not already count towards eviction. The missed-ping
  // count itself stays round-based.
  if (attempt >= config_.ping_retries) return;
  const std::uint64_t gen = generation_;
  const sim::Duration delay =
      retry_backoff(config_.reply_timeout).delay(attempt, jitter_rng_);
  if (attempt > 0) {
    // A genuine retry wait (attempt 0 is just the normal reply window):
    // make the idle visible to critical-path attribution.
    const obs::SpanId wait = trace_->begin_span(
        "peerhood.backoff.wait", scheduler_.now(), self_, "backoff");
    trace_->end_span(wait, scheduler_.now() + delay);
  }
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_ping);
  scheduler_.schedule(delay, [this, gen, id, token, attempt] {
    if (!running_ || gen != generation_) return;
    auto pending = pending_pings_.find(id);
    // Answered, evicted, or superseded by the next round meanwhile.
    if (pending == pending_pings_.end() || pending->second != token) return;
    send_ping(id, attempt + 1);
  });
}

void Daemon::declare_gone(DeviceId id, GoneCause cause) {
  auto it = neighbours_.find(id);
  if (it == neighbours_.end()) return;
  const bool was_announced = it->second.announced;
  const DeviceInfo last_known = it->second.info;
  neighbours_.erase(it);
  pending_pings_.erase(id);
  refresh_table_gauges();
  if (!was_announced) return;
  c_neighbours_disappeared_->inc();
  PH_LOG(info, "phd") << device_name_ << ": device " << id << " disappeared";
  notify(NeighbourEvent::Kind::disappeared, last_known, cause);
}

void Daemon::announce_if_ready(Neighbour& neighbour) {
  if (neighbour.announced || !neighbour.services_known) return;
  neighbour.announced = true;
  c_neighbours_appeared_->inc();
  refresh_table_gauges();
  PH_LOG(info, "phd") << device_name_ << ": device '" << neighbour.info.name
                      << "' (" << neighbour.info.id << ") appeared with "
                      << neighbour.info.services.size() << " service(s)";
  // Snapshot first: handlers may mutate the neighbour table.
  const DeviceInfo snapshot = neighbour.info;
  notify(NeighbourEvent::Kind::appeared, snapshot);
}

void Daemon::expire_stale_entries() {
  const sim::Time now = scheduler_.now();
  std::vector<DeviceId> stale;
  for (const auto& [id, neighbour] : neighbours_) {
    if (neighbour.info.last_seen + config_.entry_ttl < now) stale.push_back(id);
  }
  for (DeviceId id : stale) declare_gone(id, GoneCause::expired);
}

void Daemon::refresh_table_gauges() {
  const sim::Time now = scheduler_.now();
  double announced = 0;
  sim::Duration staleness = 0;
  for (const auto& [id, neighbour] : neighbours_) {
    if (!neighbour.announced) continue;
    ++announced;
    if (now > neighbour.info.last_seen) {
      staleness = std::max(staleness, now - neighbour.info.last_seen);
    }
  }
  g_neighbour_count_->set(announced);
  g_table_staleness_->set(static_cast<double>(staleness));
}

}  // namespace ph::peerhood
