#include <algorithm>

#include "peerhood/session_state.hpp"
#include "sim/backoff.hpp"
#include "proto/codec.hpp"
#include "util/log.hpp"
#include "obs/prof.hpp"

namespace ph::peerhood::detail {

Bytes encode(const SessionWire& wire) {
  proto::Writer w;
  w.u8(static_cast<std::uint8_t>(wire.op));
  w.u64(wire.session);
  w.u32(wire.seq);
  w.u64(wire.trace);
  w.bytes(wire.payload);
  return std::move(w).take();
}

Result<SessionWire> decode_session_wire(BytesView data) {
  proto::Reader r(data);
  SessionWire wire;
  auto op = r.u8();
  if (!op) return op.error();
  if (*op < 1 || *op > static_cast<std::uint8_t>(SessionOp::close)) {
    return Error{Errc::protocol_error, "unknown session op"};
  }
  wire.op = static_cast<SessionOp>(*op);
  auto session = r.u64();
  if (!session) return session.error();
  wire.session = *session;
  auto seq = r.u32();
  if (!seq) return seq.error();
  wire.seq = *seq;
  auto trace = r.u64();
  if (!trace) return trace.error();
  wire.trace = *trace;
  auto payload = r.bytes();
  if (!payload) return payload.error();
  wire.payload = std::move(*payload);
  return wire;
}

void SessionState::attach_channel(transport::Channel new_channel) {
  channel = new_channel;
  auto weak = weak_from_this();
  // Handlers capture the channel they belong to: after a handover, events
  // from the superseded channel must not disturb the session.
  channel.on_receive([weak, new_channel](BytesView data) {
    auto self = weak.lock();
    if (!self || self->closed || !(self->channel == new_channel)) return;
    auto wire = decode_session_wire(data);
    if (!wire) {
      PH_LOG(warn, "conn") << "malformed session frame: "
                           << wire.error().to_string();
      return;
    }
    self->handle_wire(*wire);
  });
  channel.on_break([weak, new_channel] {
    auto self = weak.lock();
    if (!self || self->closed || !(self->channel == new_channel)) return;
    self->on_channel_break();
  });
}

void SessionState::send_wire(const SessionWire& wire) {
  if (channel.open()) channel.send(encode(wire));
}

obs::Trace& SessionState::journal() { return daemon->transport().trace(); }

void SessionState::send_payload(Bytes payload) {
  if (closed) return;
  const std::uint32_t seq = next_seq++;
  // The innermost open span (the RPC, the task) rides the wire so the
  // peer parents its handling under the remote sender — including when
  // the frame is retransmitted over a different channel after handover.
  const std::uint64_t trace_ctx = journal().current_context();
  unacked.push_back({seq, payload, trace_ctx});
  SessionWire wire;
  wire.op = SessionOp::data;
  wire.session = id;
  wire.seq = seq;
  wire.trace = trace_ctx;
  wire.payload = std::move(payload);
  send_wire(wire);  // dropped when channel is down; resume retransmits
}

void SessionState::handle_wire(const SessionWire& wire) {
  switch (wire.op) {
    case SessionOp::hello:
      // Handled at accept time by the library; a duplicate here is noise.
      break;
    case SessionOp::resume:
      // Server side: the library reattached the channel already;
      // acknowledge with our delivery point and retransmit what the client
      // lacks.
      if (!initiator) {
        SessionWire ack;
        ack.op = SessionOp::resume_ack;
        ack.session = id;
        ack.seq = last_delivered;
        send_wire(ack);
        retransmit_from(wire.seq);
      }
      break;
    case SessionOp::resume_ack:
      if (initiator && resuming) {
        resuming = false;
        established = true;
        ++handovers;
        resume_attempts = 0;  // recovered: next break backs off from scratch
        scheduler().cancel(resume_timer);
        journal().end_span(resume_span, scheduler().now());
        resume_span = 0;
        journal().add_event("peerhood.session.handover", scheduler().now(),
                            self,
                            std::string(net::to_string(channel.technology())));
        retransmit_from(wire.seq);
        arm_monitor();
        PH_LOG(info, "conn") << "session " << id << " resumed over "
                             << net::to_string(channel.technology());
      }
      break;
    case SessionOp::data: {
      // Acknowledge cumulatively, deliver in order exactly once.
      if (wire.seq > last_delivered) {
        reorder.emplace(wire.seq, Arrival{wire.payload, wire.trace});
        while (!reorder.empty() &&
               reorder.begin()->first == last_delivered + 1) {
          Arrival arrival = std::move(reorder.begin()->second);
          Bytes payload = std::move(arrival.payload);
          reorder.erase(reorder.begin());
          ++last_delivered;
          if (on_message) {
            // Invoke through a copy: the handler may close the session,
            // which clears on_message — the copy keeps the executing
            // lambda (and anything it captured) alive.
            auto handler = on_message;
            // Deliver under the remote sender's span from the wire (a
            // reordered frame would otherwise inherit the wrong flight
            // span from the channel's receive path).
            obs::Trace::Scope causal(journal(), arrival.trace);
            handler(payload);
          }
          if (closed) return;  // handler closed the session
        }
      }
      SessionWire ack;
      ack.op = SessionOp::ack;
      ack.session = id;
      ack.seq = last_delivered;
      send_wire(ack);
      break;
    }
    case SessionOp::ack:
      while (!unacked.empty() && unacked.front().seq <= wire.seq) {
        unacked.pop_front();
      }
      break;
    case SessionOp::close:
      finish(Error{Errc::ok});
      break;
  }
}

void SessionState::retransmit_from(std::uint32_t peer_last_delivered) {
  while (!unacked.empty() && unacked.front().seq <= peer_last_delivered) {
    unacked.pop_front();
  }
  for (const auto& entry : unacked) {
    SessionWire wire;
    wire.op = SessionOp::data;
    wire.session = id;
    wire.seq = entry.seq;
    wire.trace = entry.trace;
    wire.payload = entry.payload;
    send_wire(wire);
  }
}

void SessionState::graceful_close() {
  if (closed) return;
  SessionWire wire;
  wire.op = SessionOp::close;
  wire.session = id;
  send_wire(wire);
  closed = true;
  journal().end_span(resume_span, scheduler().now());
  resume_span = 0;
  scheduler().cancel(monitor_timer);
  scheduler().cancel(resume_timer);
  scheduler().cancel(server_wait_timer);
  if (channel.valid()) channel.close();
  if (on_ended) on_ended(id);
  // Handlers may capture Connection handles that own this state; release
  // them so ended sessions cannot form reference cycles.
  on_message = nullptr;
  on_close = nullptr;
  on_ended = nullptr;
}

void SessionState::fail(Error error) { finish(error); }

void SessionState::finish(const Error& reason) {
  if (closed) return;
  closed = true;
  journal().end_span(resume_span, scheduler().now());
  resume_span = 0;
  scheduler().cancel(monitor_timer);
  scheduler().cancel(resume_timer);
  scheduler().cancel(server_wait_timer);
  if (channel.valid() && channel.open()) channel.close();
  if (on_ended) on_ended(id);
  if (on_close) {
    auto handler = on_close;  // survive handler resetting the Connection
    handler(reason);
  }
  on_message = nullptr;
  on_close = nullptr;
  on_ended = nullptr;
}

void SessionState::on_channel_break() {
  if (closed) return;
  established = false;
  scheduler().cancel(monitor_timer);
  if (!options.seamless) {
    finish(Error{Errc::connection_lost, "channel broke, seamless mode off"});
    return;
  }
  if (initiator) {
    if (resuming) {
      // A resume attempt's own channel died (peer refused, moved, or the
      // radio flapped): sweep again after backoff; the deadline timer is
      // still armed from the original break.
      schedule_resume_retry();
      return;
    }
    start_resume();
  } else {
    // Server side: wait for the initiator to resume; give up after the
    // same deadline the client uses.
    arm_server_wait();
  }
}

void SessionState::arm_server_wait() {
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_session);
  auto weak = weak_from_this();
  scheduler().cancel(server_wait_timer);
  server_wait_timer =
      scheduler().schedule(options.resume_deadline, [weak] {
        auto self = weak.lock();
        if (!self || self->closed || self->established) return;
        self->finish(Error{Errc::connection_lost, "peer never resumed"});
      });
}

void SessionState::schedule_resume_retry() {
  sim::Backoff backoff;
  backoff.base = options.resume_retry_interval;
  backoff.multiplier = options.resume_backoff;
  backoff.cap = std::max(options.resume_retry_cap, options.resume_retry_interval);
  backoff.jitter = options.resume_jitter;
  const sim::Duration delay =
      backoff.delay(resume_attempts++, daemon->jitter_rng());
  // The idle window is known now — record it as a closed child of the
  // resume span so attribution can separate backoff from reconnecting.
  const obs::SpanId wait = journal().begin_span_under(
      resume_span, "peerhood.backoff.wait", scheduler().now(), self, "backoff");
  journal().end_span(wait, scheduler().now() + delay);
  auto weak = weak_from_this();
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_session);
  scheduler().schedule(delay, [weak] {
    auto self = weak.lock();
    if (self) self->resume_sweep();
  });
}

void SessionState::start_resume() {
  if (resuming) return;
  resuming = true;
  resume_attempts = 0;
  resume_span = journal().begin_span("peerhood.session.resume",
                                     scheduler().now(), self, "resume");
  PH_LOG(info, "conn") << "session " << id
                       << " lost its channel; hunting for an alternative";
  auto weak = weak_from_this();
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_session);
  scheduler().cancel(resume_timer);
  resume_timer = scheduler().schedule(options.resume_deadline, [weak] {
    auto self = weak.lock();
    if (!self || self->closed || !self->resuming) return;
    self->resuming = false;
    self->finish(Error{Errc::connection_lost, "resume deadline exceeded"});
  });
  resume_sweep();
}

void SessionState::resume_sweep() {
  if (closed || !resuming) return;
  // Rank this device's radios by signal towards the peer, preferring free
  // technologies on ties — "the best possible alternative" (Table 3).
  struct Candidate {
    NetworkPlugin* plugin;
    double signal;
  };
  std::vector<Candidate> candidates;
  for (const auto& plugin : daemon->plugins()) {
    if (options.force_technology &&
        plugin->technology() != *options.force_technology) {
      continue;
    }
    const double s = plugin->endpoint().signal_to(peer);
    if (s > 0.0) candidates.push_back({plugin.get(), s});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.signal != b.signal) return a.signal > b.signal;
              return a.plugin->preference() < b.plugin->preference();
            });
  if (candidates.empty()) {
    // Nothing reachable right now; back off and retry (the peer may walk
    // back into range — or the outage end — before the deadline).
    schedule_resume_retry();
    return;
  }
  auto weak = weak_from_this();
  NetworkPlugin* plugin = candidates.front().plugin;
  // Connect attempts (net.link.open) belong under the resume span.
  obs::Trace::Scope causal(journal(), resume_span);
  plugin->endpoint().connect(
      peer, service_port, [weak](Result<transport::Channel> result) {
        auto self = weak.lock();
        if (!self || self->closed || !self->resuming) {
          if (result) result->close();
          return;
        }
        if (!result) {
          self->schedule_resume_retry();
          return;
        }
        self->attach_channel(*result);
        SessionWire resume;
        resume.op = SessionOp::resume;
        resume.session = self->id;
        resume.seq = self->last_delivered;
        obs::Trace::Scope causal(self->journal(), self->resume_span);
        self->send_wire(resume);
        // established flips when resume_ack arrives.
      });
}

void SessionState::arm_monitor() {
  if (!initiator || options.monitor_interval == 0 || !options.seamless) return;
  auto weak = weak_from_this();
  const obs::prof::TagScope tag(obs::prof::Center::peerhood_session);
  scheduler().cancel(monitor_timer);
  monitor_timer = scheduler().schedule(options.monitor_interval, [weak] {
    auto self = weak.lock();
    if (!self || self->closed) return;
    self->check_signal();
  });
}

void SessionState::check_signal() {
  if (closed || resuming || !established) return;
  const double current = channel.signal();
  if (current < options.weak_signal_threshold) {
    // Is any other radio meaningfully better right now?
    for (const auto& plugin : daemon->plugins()) {
      if (plugin->technology() == channel.technology()) continue;
      if (options.force_technology) break;  // pinned: no proactive handover
      if (plugin->endpoint().signal_to(peer) > current + 0.1) {
        PH_LOG(info, "conn")
            << "session " << id << " signal weak ("
            << current << ") on " << net::to_string(channel.technology())
            << "; proactive handover";
        // Drop the weak channel and reuse the resume machinery.
        transport::Channel old = channel;
        established = false;
        start_resume();
        old.close();
        return;
      }
    }
  }
  arm_monitor();
}

}  // namespace ph::peerhood::detail
