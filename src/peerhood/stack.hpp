// Stack — one simulated PeerHood device, fully assembled.
//
// Creates the node in the radio world, one adapter + plugin per requested
// technology, the PeerHood daemon and the library facade. Scenarios,
// examples and benches build their populations out of Stacks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "peerhood/daemon.hpp"
#include "peerhood/library.hpp"

namespace ph::peerhood {

struct StackConfig {
  std::string device_name = "device";
  /// Radios to install; defaults to Bluetooth only, like the thesis' tests.
  std::vector<net::TechProfile> radios = {net::bluetooth_2_0()};
  DaemonConfig daemon;
  /// Start the daemon immediately (discovery begins at construction time).
  bool autostart = true;
};

class Stack {
 public:
  Stack(net::Medium& medium, std::unique_ptr<sim::MobilityModel> mobility,
        StackConfig config);
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  DeviceId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return daemon_->device_name(); }
  Daemon& daemon() noexcept { return *daemon_; }
  PeerHood& library() noexcept { return *library_; }
  net::Medium& medium() noexcept { return medium_; }

  /// Powers one radio on/off (failure injection, battery saving).
  void set_radio_powered(net::Technology tech, bool on);

  /// Whole-device blackout (fault plane): the daemon stops and every radio
  /// powers off, as if the battery was pulled. Neighbours evict this
  /// device through missed pings; local state (services, accounts) stays,
  /// like flash storage would.
  void blackout();
  /// Boot after a blackout: radios power on and the daemon cold-restarts —
  /// the neighbour table is wiped (monitors see GoneCause::blackout) and
  /// rebuilt from re-discovery.
  void restart();

 private:
  net::Medium& medium_;
  DeviceId id_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<PeerHood> library_;
};

}  // namespace ph::peerhood
