// Stack — one PeerHood device, fully assembled.
//
// Registers the device with a transport, creates one endpoint + plugin per
// requested technology, the PeerHood daemon and the library facade.
// Scenarios, examples and benches build their populations out of Stacks.
// The transport decides the substrate: SimTransport for virtual-time
// simulation, SocketTransport for real sockets on loopback.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "peerhood/daemon.hpp"
#include "peerhood/library.hpp"
#include "transport/transport.hpp"

namespace ph::net {
class Medium;
}

namespace ph::peerhood {

struct StackConfig {
  std::string device_name = "device";
  /// Radios to install; defaults to Bluetooth only, like the thesis' tests.
  std::vector<net::TechProfile> radios = {net::bluetooth_2_0()};
  DaemonConfig daemon;
  /// Start the daemon immediately (discovery begins at construction time).
  bool autostart = true;
  /// Substrate for the config-only constructor; the Stack(Transport&, ...)
  /// overload fills it in.
  transport::Transport* transport = nullptr;
  /// Ask the transport to start its live ops endpoint (/metrics, /series,
  /// /slo, /flight over a UNIX socket). Transports without one (sim) log a
  /// warning and continue — the flag is best-effort by design.
  bool ops_server = false;

  // Fluent builder, so call sites read as one declarative expression:
  //   Stack s(StackConfig{}.with_name("phone").with_radios({...})
  //                        .with_transport(transport));
  StackConfig& with_name(std::string name) {
    device_name = std::move(name);
    return *this;
  }
  StackConfig& with_radios(std::vector<net::TechProfile> r) {
    radios = std::move(r);
    return *this;
  }
  StackConfig& with_daemon(DaemonConfig d) {
    daemon = d;
    return *this;
  }
  StackConfig& with_autostart(bool on) {
    autostart = on;
    return *this;
  }
  StackConfig& with_transport(transport::Transport& t) {
    transport = &t;
    return *this;
  }
  StackConfig& with_ops_server(bool on = true) {
    ops_server = on;
    return *this;
  }
};

class Stack {
 public:
  /// Primary: assemble a device on any transport backend.
  Stack(transport::Transport& transport, StackConfig config,
        std::unique_ptr<sim::MobilityModel> mobility = nullptr);
  /// Builder form; config.transport must be set (with_transport).
  explicit Stack(StackConfig config,
                 std::unique_ptr<sim::MobilityModel> mobility = nullptr);
  /// Legacy compat: wraps `medium` in an owned SimTransport; behaviour is
  /// byte-identical to the pre-transport stack.
  Stack(net::Medium& medium, std::unique_ptr<sim::MobilityModel> mobility,
        StackConfig config);
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  DeviceId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return daemon_->device_name(); }
  Daemon& daemon() noexcept { return *daemon_; }
  PeerHood& library() noexcept { return *library_; }
  transport::Transport& transport() noexcept { return transport_; }

  /// Powers one radio on/off (failure injection, battery saving). Fails
  /// with not_supported when the device has no radio of that technology.
  Result<void> set_radio_powered(net::Technology tech, bool on);

  /// Whole-device blackout (fault plane): the daemon stops and every radio
  /// powers off, as if the battery was pulled. Neighbours evict this
  /// device through missed pings; local state (services, accounts) stays,
  /// like flash storage would.
  void blackout();
  /// Boot after a blackout: radios power on and the daemon cold-restarts —
  /// the neighbour table is wiped (monitors see GoneCause::blackout) and
  /// rebuilt from re-discovery.
  void restart();

 private:
  /// Set only by the legacy Medium constructor; declared before transport_
  /// so the reference outlives every user.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport& transport_;
  DeviceId id_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<PeerHood> library_;
};

}  // namespace ph::peerhood
