// PeerHood Daemon (PHD) — thesis §4.2.1.
//
// "An independent application which always runs on background and keeps
// tracks of other wireless device discovery and service discovery in those
// devices. It maintains a list of neighbor devices as well as list of local
// and remote services. Services through PeerHood-enabled applications are
// registered in PHD and PHD handles the service requests."
//
// Concretely, per plugin the daemon runs:
//   * an inquiry loop — periodic device discovery scans (the Bluetooth
//     inquiry that dominates the thesis' 11 s group-search time);
//   * service discovery — after an inquiry hit, the daemon queries the
//     remote PHD for its advertised services (datagram + timeout retry);
//   * active monitoring — known neighbours are pinged between inquiry
//     rounds; a neighbour missing `max_missed_pings` pongs is declared
//     gone and monitors are notified (this is what evicts members from
//     dynamic groups when they walk away).
//
// The daemon speaks only ph::transport vocabulary (endpoints, datagrams,
// a scheduler) — the same binary logic runs over the simulated medium and
// over real sockets on loopback. The real PHD is a separate OS process
// reached over a local socket; here daemon and applications share the
// process, so the "local socket" is a direct method call. This changes IPC
// cost (microseconds) but none of the network behaviour measured.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peerhood/plugin.hpp"
#include "peerhood/types.hpp"
#include "proto/daemon.hpp"
#include "sim/backoff.hpp"
#include "transport/transport.hpp"
#include "util/result.hpp"

namespace ph::net {
class Medium;
}

namespace ph::peerhood {

struct DaemonConfig {
  /// Gap between consecutive discovery scans on one plugin (measured from
  /// scan end to next scan start).
  sim::Duration inquiry_interval = sim::seconds(20);
  /// Liveness-probe period for known neighbours.
  sim::Duration ping_interval = sim::seconds(2);
  /// How long to wait for a pong / service reply before retrying.
  sim::Duration reply_timeout = sim::seconds(1);
  /// Consecutive unanswered pings before a neighbour is declared gone.
  int max_missed_pings = 3;
  /// Service-query retries before giving up on a discovered device.
  int query_retries = 3;
  /// Neighbour entries not refreshed for this long are dropped even
  /// without ping evidence (safety net).
  sim::Duration entry_ttl = sim::minutes(2);
  /// Retry hardening (fault plane): failed service queries back off
  /// exponentially — attempt n waits base * retry_backoff^n, where base is
  /// that attempt's reply window — capped at `retry_cap`, with
  /// ±`retry_jitter` deterministic jitter drawn from a stream forked off
  /// the world RNG at daemon construction.
  double retry_backoff = 2.0;
  sim::Duration retry_cap = sim::seconds(8);
  double retry_jitter = 0.1;
  /// Extra ping attempts within one ping round when a pong does not arrive
  /// inside the (backed-off) reply window — burst-loss resilience. Missed
  /// counting stays round-based, so the thesis' detection bound
  /// (max_missed_pings + 1) * ping_interval is unchanged.
  int ping_retries = 1;
};

/// Why a neighbour left this device's neighbourhood view.
enum class GoneCause {
  missed_pings,  ///< max_missed_pings consecutive unanswered liveness probes
  expired,       ///< entry_ttl safety net fired without ping evidence
  blackout,      ///< this daemon cold-restarted; the table did not survive
};

/// One neighbourhood change (thesis Table 3, "Active monitoring of a
/// device"), delivered through a single handler.
struct NeighbourEvent {
  enum class Kind {
    appeared,      ///< device entered the neighbourhood, services known
    updated,       ///< known device's service list or technology set changed
    disappeared,   ///< device left; `cause` says why
  };
  Kind kind = Kind::appeared;
  /// Last known state of the device — still populated for `disappeared`,
  /// so handlers can clean up by name/services, not just id.
  DeviceInfo device;
  /// Meaningful only when kind == disappeared.
  GoneCause cause = GoneCause::missed_pings;
};

/// Receives every NeighbourEvent a monitor matches.
using NeighbourHandler = std::function<void(const NeighbourEvent&)>;

class Daemon {
 public:
  using MonitorId = std::uint64_t;

  /// Primary constructor: the daemon runs on any transport backend.
  Daemon(transport::Transport& transport, DeviceId self,
         std::string device_name, DaemonConfig config = {});
  /// Legacy compat: wraps `medium` in an owned SimTransport. Behaviour is
  /// byte-identical to the pre-transport daemon.
  Daemon(net::Medium& medium, DeviceId self, std::string device_name,
         DaemonConfig config = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Adds a plugin before start(). The daemon binds the control port on the
  /// plugin's endpoint immediately (so it answers queries even pre-start).
  /// Fails with invalid_argument on a null plugin or one whose endpoint
  /// belongs to another device.
  Result<void> add_plugin(std::unique_ptr<NetworkPlugin> plugin);

  /// Starts the inquiry and ping loops. Idempotent; fails with state_error
  /// if no plugin was added (nothing to scan or ping with).
  Result<void> start();
  /// Stops the loops; the neighbour table is retained.
  void stop();
  /// Cold boot after a whole-device blackout (fault plane): stops the
  /// loops, wipes the neighbour table — every announced neighbour fires
  /// `disappeared` with GoneCause::blackout — and starts fresh, so the
  /// table is rebuilt from re-discovery alone.
  Result<void> restart();
  bool running() const noexcept { return running_; }

  DeviceId self() const noexcept { return self_; }
  const std::string& device_name() const noexcept { return device_name_; }
  const DaemonConfig& config() const noexcept { return config_; }

  // --- service registry (thesis Table 3: "Service Sharing") -------------
  Result<void> register_service(ServiceInfo service);
  Result<void> unregister_service(const std::string& name);
  /// Replaces a registered service's attributes. Neighbours observe the
  /// change at their next service-discovery refresh.
  Result<void> update_service_attributes(
      const std::string& name, std::map<std::string, std::string> attributes);
  std::vector<ServiceInfo> local_services() const;

  // --- neighbourhood ------------------------------------------------------
  std::vector<DeviceInfo> devices() const;
  Result<DeviceInfo> device(DeviceId id) const;
  /// All (device, service) pairs advertising `service_name`.
  std::vector<std::pair<DeviceInfo, ServiceInfo>> find_service(
      std::string_view service_name) const;

  // --- monitoring ---------------------------------------------------------
  /// Monitors the whole neighbourhood.
  MonitorId monitor_all(NeighbourHandler handler);
  /// Monitors one device only.
  MonitorId monitor_device(DeviceId id, NeighbourHandler handler);
  void unmonitor(MonitorId id);

  /// Starts one immediate discovery round on every plugin (benches use this
  /// to measure cold-start discovery without waiting for the timer).
  void trigger_discovery();

  /// Typed view of the registry's `peerhood.daemon.d<self>.*` instruments
  /// (`stats().counter("pings_sent")`, ...); the transport's per-world
  /// registry is the source of truth.
  obs::Snapshot stats() const;
  const std::vector<std::unique_ptr<NetworkPlugin>>& plugins() const {
    return plugins_;
  }
  /// The plugin driving `tech`, or nullptr.
  NetworkPlugin* plugin_for(net::Technology tech);

  /// The substrate this daemon runs on.
  transport::Transport& transport() noexcept { return transport_; }
  transport::Scheduler& scheduler() noexcept { return scheduler_; }
  /// Deterministic jitter stream for retry backoff (also used by session
  /// resume sweeps); forked off the world RNG at construction so the same
  /// seed replays the same retry schedule.
  sim::Rng& jitter_rng() noexcept { return jitter_rng_; }

 private:
  /// Compat plumbing: takes ownership of a transport, then behaves exactly
  /// like the reference constructor.
  Daemon(std::unique_ptr<transport::Transport> owned, DeviceId self,
         std::string device_name, DaemonConfig config);

  struct Neighbour {
    DeviceInfo info;
    int missed_pings = 0;
    bool services_known = false;
    bool announced = false;  // on_appear already fired
  };

  struct PendingQuery {
    DeviceId target = net::kInvalidNode;
    net::Technology tech = net::Technology::bluetooth;
    int attempts_left = 0;
    sim::EventId timeout_event = 0;
    obs::SpanId span = 0;  // closed when answered or given up
  };

  struct Monitor {
    DeviceId device = net::kInvalidNode;  // kInvalidNode = all devices
    NeighbourHandler handler;
  };

  void bind_control_port(NetworkPlugin& plugin);
  void schedule_inquiry(NetworkPlugin& plugin, sim::Duration delay);
  void run_inquiry(NetworkPlugin& plugin);
  void handle_inquiry_result(NetworkPlugin& plugin, std::vector<DeviceId> found);
  void send_service_query(DeviceId target, net::Technology tech,
                          int attempts_left);
  /// Next free query/ping token; wraps and skips tokens still owned by an
  /// in-flight exchange, so week-long soaks can never collide a stale
  /// timeout with a fresh query.
  std::uint32_t allocate_token();
  /// Backoff policy for query/ping retries (base = that exchange's reply
  /// window).
  sim::Backoff retry_backoff(sim::Duration base) const;
  void on_daemon_datagram(NetworkPlugin& plugin, DeviceId src, BytesView payload);
  /// Updates the neighbour table from a SERVICE_REPLY (answered query or
  /// unsolicited broadcast announcement).
  void apply_service_reply(NetworkPlugin& plugin, DeviceId src,
                           const proto::DaemonMessage& message);
  /// Pushes the local service list to broadcast-capable radios (WLAN):
  /// neighbours learn of registry changes immediately, not at their next
  /// scan.
  void announce_services();
  void schedule_ping_round();
  void run_ping_round();
  /// Sends one ping to `id` (over the best-signal plugin it is known on)
  /// and arms the in-round retry timer. Returns false when no radio
  /// reaches the device.
  bool send_ping(DeviceId id, int attempt);
  void schedule_ping_retry(DeviceId id, std::uint32_t token, int attempt);
  void declare_gone(DeviceId id, GoneCause cause);
  void announce_if_ready(Neighbour& neighbour);
  void expire_stale_entries();
  /// Recomputes the neighbour-table health gauges (`neighbour_count`,
  /// `table_staleness_us`) — the series the SLO rules watch. Called on
  /// every table change and once per ping round (staleness grows with
  /// virtual time even when the table is static).
  void refresh_table_gauges();
  /// Fans one event out to every matching monitor.
  void notify(NeighbourEvent::Kind kind, const DeviceInfo& device,
              GoneCause cause = GoneCause::missed_pings);

  /// Set only by the legacy Medium constructor (an owned SimTransport);
  /// declared before transport_ so the reference always outlives users.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport& transport_;
  transport::Scheduler& scheduler_;
  DeviceId self_;
  std::string device_name_;
  DaemonConfig config_;
  bool running_ = false;

  std::vector<std::unique_ptr<NetworkPlugin>> plugins_;
  std::map<std::string, ServiceInfo> local_services_;
  std::map<DeviceId, Neighbour> neighbours_;
  std::map<std::uint32_t, PendingQuery> pending_queries_;
  std::map<DeviceId, std::uint32_t> pending_pings_;  // device -> token
  std::uint32_t next_token_ = 1;

  std::map<MonitorId, Monitor> monitors_;
  MonitorId next_monitor_ = 1;

  /// Incremented on every start/stop; periodic callbacks from an older
  /// generation recognise themselves as stale and do not reschedule.
  std::uint64_t generation_ = 0;

  /// Jitter stream for retry backoff; see jitter_rng().
  sim::Rng jitter_rng_;

  // Registry handles (`peerhood.daemon.d<self>.*`) into the transport's
  // per-world registry; the trace journal is shared the same way.
  std::string metric_prefix_;
  obs::Trace* trace_ = nullptr;
  obs::Counter* c_inquiries_started_ = nullptr;
  obs::Counter* c_devices_found_ = nullptr;
  obs::Counter* c_service_queries_ = nullptr;
  obs::Counter* c_service_replies_ = nullptr;
  obs::Counter* c_pings_sent_ = nullptr;
  obs::Counter* c_pongs_received_ = nullptr;
  obs::Counter* c_neighbours_appeared_ = nullptr;
  obs::Counter* c_neighbours_disappeared_ = nullptr;
  obs::Counter* c_announcements_sent_ = nullptr;
  obs::Gauge* g_neighbour_count_ = nullptr;
  obs::Gauge* g_table_staleness_ = nullptr;
  obs::Histogram* h_discovery_ = nullptr;  // inquiry start -> results in
};

}  // namespace ph::peerhood
