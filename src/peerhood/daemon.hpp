// PeerHood Daemon (PHD) — thesis §4.2.1.
//
// "An independent application which always runs on background and keeps
// tracks of other wireless device discovery and service discovery in those
// devices. It maintains a list of neighbor devices as well as list of local
// and remote services. Services through PeerHood-enabled applications are
// registered in PHD and PHD handles the service requests."
//
// Concretely, per plugin the daemon runs:
//   * an inquiry loop — periodic device discovery scans (the Bluetooth
//     inquiry that dominates the thesis' 11 s group-search time);
//   * service discovery — after an inquiry hit, the daemon queries the
//     remote PHD for its advertised services (datagram + timeout retry);
//   * active monitoring — known neighbours are pinged between inquiry
//     rounds; a neighbour missing `max_missed_pings` pongs is declared
//     gone and monitors are notified (this is what evicts members from
//     dynamic groups when they walk away).
//
// The real PHD is a separate OS process reached over a local socket; here
// daemon and applications share the simulated process, so the "local
// socket" is a direct method call. This changes IPC cost (microseconds)
// but none of the network behaviour the evaluation measures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peerhood/plugin.hpp"
#include "peerhood/types.hpp"
#include "proto/daemon.hpp"
#include "util/result.hpp"

namespace ph::peerhood {

struct DaemonConfig {
  /// Gap between consecutive discovery scans on one plugin (measured from
  /// scan end to next scan start).
  sim::Duration inquiry_interval = sim::seconds(20);
  /// Liveness-probe period for known neighbours.
  sim::Duration ping_interval = sim::seconds(2);
  /// How long to wait for a pong / service reply before retrying.
  sim::Duration reply_timeout = sim::seconds(1);
  /// Consecutive unanswered pings before a neighbour is declared gone.
  int max_missed_pings = 3;
  /// Service-query retries before giving up on a discovered device.
  int query_retries = 3;
  /// Neighbour entries not refreshed for this long are dropped even
  /// without ping evidence (safety net).
  sim::Duration entry_ttl = sim::minutes(2);
};

/// Callbacks for active monitoring (thesis Table 3, "Active monitoring of a
/// device"): the application is notified when a monitored device enters or
/// leaves the neighbourhood.
struct MonitorCallbacks {
  std::function<void(const DeviceInfo&)> on_appear;
  /// Fired when an already-known device's service list or technology set
  /// changes.
  std::function<void(const DeviceInfo&)> on_update;
  std::function<void(DeviceId)> on_disappear;
};

class Daemon {
 public:
  using MonitorId = std::uint64_t;

  /// Snapshot of the registry's `peerhood.daemon.d<self>.*` counters; the
  /// medium's per-world registry is the source of truth.
  struct Stats {
    std::uint64_t inquiries_started = 0;
    std::uint64_t devices_found = 0;
    std::uint64_t service_queries = 0;
    std::uint64_t service_replies = 0;
    std::uint64_t pings_sent = 0;
    std::uint64_t pongs_received = 0;
    std::uint64_t neighbours_appeared = 0;
    std::uint64_t neighbours_disappeared = 0;
    /// Unsolicited service broadcasts sent (WLAN push announcements).
    std::uint64_t announcements_sent = 0;
  };

  Daemon(net::Medium& medium, DeviceId self, std::string device_name,
         DaemonConfig config = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Adds a plugin before start(). The daemon binds the control port on the
  /// plugin's adapter immediately (so it answers queries even pre-start).
  void add_plugin(std::unique_ptr<NetworkPlugin> plugin);

  /// Starts the inquiry and ping loops. Idempotent.
  void start();
  /// Stops the loops; the neighbour table is retained.
  void stop();
  bool running() const noexcept { return running_; }

  DeviceId self() const noexcept { return self_; }
  const std::string& device_name() const noexcept { return device_name_; }
  const DaemonConfig& config() const noexcept { return config_; }

  // --- service registry (thesis Table 3: "Service Sharing") -------------
  Result<void> register_service(ServiceInfo service);
  Result<void> unregister_service(const std::string& name);
  /// Replaces a registered service's attributes. Neighbours observe the
  /// change at their next service-discovery refresh.
  Result<void> update_service_attributes(
      const std::string& name, std::map<std::string, std::string> attributes);
  std::vector<ServiceInfo> local_services() const;

  // --- neighbourhood ------------------------------------------------------
  std::vector<DeviceInfo> devices() const;
  Result<DeviceInfo> device(DeviceId id) const;
  /// All (device, service) pairs advertising `service_name`.
  std::vector<std::pair<DeviceInfo, ServiceInfo>> find_service(
      std::string_view service_name) const;

  // --- monitoring ---------------------------------------------------------
  /// Monitors the whole neighbourhood.
  MonitorId monitor_all(MonitorCallbacks callbacks);
  /// Monitors one device only.
  MonitorId monitor_device(DeviceId id, MonitorCallbacks callbacks);
  void unmonitor(MonitorId id);

  /// Starts one immediate discovery round on every plugin (benches use this
  /// to measure cold-start discovery without waiting for the timer).
  void trigger_discovery();

  /// Snapshot assembled from the registry counters.
  Stats stats() const;
  const std::vector<std::unique_ptr<NetworkPlugin>>& plugins() const {
    return plugins_;
  }
  /// The plugin driving `tech`, or nullptr.
  NetworkPlugin* plugin_for(net::Technology tech);

  sim::Simulator& simulator() noexcept { return simulator_; }
  net::Medium& medium() noexcept { return medium_; }

 private:
  struct Neighbour {
    DeviceInfo info;
    int missed_pings = 0;
    bool services_known = false;
    bool announced = false;  // on_appear already fired
  };

  struct PendingQuery {
    DeviceId target = net::kInvalidNode;
    net::Technology tech = net::Technology::bluetooth;
    int attempts_left = 0;
    sim::EventId timeout_event = 0;
    obs::SpanId span = 0;  // closed when answered or given up
  };

  void bind_control_port(NetworkPlugin& plugin);
  void schedule_inquiry(NetworkPlugin& plugin, sim::Duration delay);
  void run_inquiry(NetworkPlugin& plugin);
  void handle_inquiry_result(NetworkPlugin& plugin, std::vector<DeviceId> found);
  void send_service_query(DeviceId target, net::Technology tech, int attempts_left);
  void on_daemon_datagram(NetworkPlugin& plugin, DeviceId src, BytesView payload);
  /// Updates the neighbour table from a SERVICE_REPLY (answered query or
  /// unsolicited broadcast announcement).
  void apply_service_reply(NetworkPlugin& plugin, DeviceId src,
                           const proto::DaemonMessage& message);
  /// Pushes the local service list to broadcast-capable radios (WLAN):
  /// neighbours learn of registry changes immediately, not at their next
  /// scan.
  void announce_services();
  void schedule_ping_round();
  void run_ping_round();
  void declare_gone(DeviceId id);
  void announce_if_ready(Neighbour& neighbour);
  void expire_stale_entries();

  net::Medium& medium_;
  sim::Simulator& simulator_;
  DeviceId self_;
  std::string device_name_;
  DaemonConfig config_;
  bool running_ = false;

  std::vector<std::unique_ptr<NetworkPlugin>> plugins_;
  std::map<std::string, ServiceInfo> local_services_;
  std::map<DeviceId, Neighbour> neighbours_;
  std::map<std::uint32_t, PendingQuery> pending_queries_;
  std::map<DeviceId, std::uint32_t> pending_pings_;  // device -> token
  std::uint32_t next_token_ = 1;

  struct Monitor {
    DeviceId device = net::kInvalidNode;  // kInvalidNode = all devices
    MonitorCallbacks callbacks;
  };
  std::map<MonitorId, Monitor> monitors_;
  MonitorId next_monitor_ = 1;

  /// Incremented on every start/stop; periodic callbacks from an older
  /// generation recognise themselves as stale and do not reschedule.
  std::uint64_t generation_ = 0;

  // Registry handles (`peerhood.daemon.d<self>.*`) into the medium's
  // per-world registry; the trace journal is shared the same way.
  obs::Trace* trace_ = nullptr;
  obs::Counter* c_inquiries_started_ = nullptr;
  obs::Counter* c_devices_found_ = nullptr;
  obs::Counter* c_service_queries_ = nullptr;
  obs::Counter* c_service_replies_ = nullptr;
  obs::Counter* c_pings_sent_ = nullptr;
  obs::Counter* c_pongs_received_ = nullptr;
  obs::Counter* c_neighbours_appeared_ = nullptr;
  obs::Counter* c_neighbours_disappeared_ = nullptr;
  obs::Counter* c_announcements_sent_ = nullptr;
};

}  // namespace ph::peerhood
