// Internal session machinery behind peerhood::Connection.
// Private to ph_peerhood; applications include peerhood/connection.hpp.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "obs/trace.hpp"
#include "peerhood/connection.hpp"
#include "peerhood/daemon.hpp"
#include "peerhood/types.hpp"
#include "transport/transport.hpp"
#include "util/bytes.hpp"

namespace ph::peerhood::detail {

/// Session wire-message types (one byte on the wire).
enum class SessionOp : std::uint8_t {
  hello = 1,       ///< opens a new session (client -> server)
  resume = 2,      ///< reattaches after a break; seq = client's last delivered
  resume_ack = 3,  ///< server accepts resume; seq = server's last delivered
  data = 4,
  ack = 5,         ///< cumulative acknowledgement
  close = 6,       ///< graceful end
};

struct SessionWire {
  SessionOp op = SessionOp::data;
  std::uint64_t session = 0;
  std::uint32_t seq = 0;
  /// Trace context captured when the payload was first sent; retransmits
  /// carry the original so delivery keeps its causal tie after handover.
  std::uint64_t trace = 0;
  Bytes payload;
};

Bytes encode(const SessionWire& wire);
Result<SessionWire> decode_session_wire(BytesView data);

struct SessionState : std::enable_shared_from_this<SessionState> {
  Daemon* daemon = nullptr;  // local daemon: plugins, scheduler access
  std::uint64_t id = 0;
  DeviceId self = net::kInvalidNode;
  DeviceId peer = net::kInvalidNode;
  net::Port service_port = 0;
  bool initiator = false;  // only the initiator drives resume/handover
  ConnectOptions options;

  /// The channel currently carrying the session (may be dead).
  transport::Channel channel;
  bool established = false;
  bool closed = false;
  bool resuming = false;
  int handovers = 0;
  /// Failed sweeps in the current recovery; drives the retry backoff.
  int resume_attempts = 0;

  // Reliability.
  std::uint32_t next_seq = 1;       // next outgoing sequence number
  std::uint32_t last_delivered = 0; // highest in-order seq handed to the app
  struct Outstanding {
    std::uint32_t seq = 0;
    Bytes payload;
    std::uint64_t trace = 0;  ///< sender context at first transmission
  };
  std::deque<Outstanding> unacked;
  struct Arrival {
    Bytes payload;
    std::uint64_t trace = 0;  ///< remote sender's span, from the wire
  };
  std::map<std::uint32_t, Arrival> reorder;  // out-of-order arrivals

  std::function<void(BytesView)> on_message;
  std::function<void(const Error&)> on_close;
  /// Server-side hook: endpoint bookkeeping removes the session on end.
  std::function<void(std::uint64_t)> on_ended;

  sim::EventId monitor_timer = 0;
  sim::EventId resume_timer = 0;
  sim::EventId server_wait_timer = 0;
  /// Open while the session hunts for a replacement channel.
  obs::SpanId resume_span = 0;

  transport::Scheduler& scheduler() { return daemon->scheduler(); }
  obs::Trace& journal();

  // --- lifecycle ---------------------------------------------------------
  /// Installs receive/break handlers on `new_channel` and makes it current.
  void attach_channel(transport::Channel new_channel);
  void handle_wire(const SessionWire& wire);
  void send_payload(Bytes payload);
  void send_wire(const SessionWire& wire);
  void graceful_close();
  void fail(Error error);
  void finish(const Error& reason);

  // --- seamless connectivity ----------------------------------------------
  void on_channel_break();
  void start_resume();
  void resume_sweep();
  /// Schedules the next sweep after a failure, backing off exponentially
  /// (capped + jittered) across consecutive failures.
  void schedule_resume_retry();
  void arm_monitor();
  void check_signal();
  void retransmit_from(std::uint32_t peer_last_delivered);
  void arm_server_wait();
};

}  // namespace ph::peerhood::detail
