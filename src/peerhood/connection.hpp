// Connection — PeerHood's application-facing data channel.
//
// Thesis Table 3, "Data Transmission between Devices" + "Seamless
// Connectivity": "When PeerHood senses the breaking or weakening of the
// established connection, it tries to find the best possible alternative
// for that breaking connection, maintaining the connectivity."
//
// A Connection is a message-oriented, ordered, exactly-once session between
// two devices, layered over per-technology transport::Channels:
//
//   * every payload carries a sequence number and is buffered until the
//     peer acknowledges it;
//   * when the underlying channel breaks (peer walked out of Bluetooth range)
//     the *initiating* side hunts for an alternative technology, reconnects
//     to the same service port and RESUMEs the session — both sides then
//     retransmit whatever the other has not acknowledged;
//   * a weakening link (signal below threshold) triggers the same handover
//     proactively, before data is lost.
//
// Connection is a value handle over shared session state; copies refer to
// the same session.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/tech.hpp"
#include "peerhood/types.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace ph::peerhood {

namespace detail {
struct SessionState;
}

/// Tuning for connect() and the seamless-connectivity machinery.
struct ConnectOptions {
  /// Off = the thesis' plain connection: a broken link ends the session.
  bool seamless = true;
  /// Give up resuming after this long without a working link.
  sim::Duration resume_deadline = sim::seconds(15);
  /// Pause before the first failed resume sweep's retry; later sweeps in
  /// the same recovery back off exponentially (see resume_backoff).
  sim::Duration resume_retry_interval = sim::milliseconds(500);
  /// Backoff multiplier across consecutive failed sweeps — under a radio
  /// outage, hammering connects at a fixed cadence wastes the whole
  /// deadline budget probing a dead medium. Resets once a sweep lands a
  /// link.
  double resume_backoff = 2.0;
  /// Cap on the un-jittered sweep retry delay.
  sim::Duration resume_retry_cap = sim::seconds(4);
  /// ±fractional deterministic jitter on each retry delay (drawn from the
  /// daemon's forked jitter stream; 0 disables).
  double resume_jitter = 0.1;
  /// Signal-check period for proactive handover (0 disables checks).
  sim::Duration monitor_interval = sim::milliseconds(500);
  /// Below this signal strength the connection hunts for a better radio.
  double weak_signal_threshold = 0.15;
  /// Pin the session to one technology (disables failover across radios).
  std::optional<net::Technology> force_technology;
};

class Connection {
 public:
  Connection() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  /// True until closed or failed; sends on a non-open connection no-op.
  bool open() const noexcept;

  DeviceId remote_device() const noexcept;
  std::uint64_t session_id() const noexcept;
  /// Technology of the channel currently carrying the session.
  net::Technology current_technology() const noexcept;
  /// Times the session has moved to a different link (reactive + proactive).
  int handover_count() const noexcept;

  /// In-order, exactly-once message delivery from the peer.
  void on_message(std::function<void(BytesView)> handler);
  /// Invoked once when the session ends: Errc::ok for a graceful remote
  /// close, Errc::connection_lost when seamless recovery gave up.
  void on_close(std::function<void(const Error&)> handler);

  /// Queues a message; survives handovers via retransmission.
  void send(BytesView payload);

  /// Graceful close (Figure 7: "connection is terminated successfully on
  /// request"); notifies the peer.
  void close();

 private:
  friend class PeerHood;
  friend struct detail::SessionState;
  explicit Connection(std::shared_ptr<detail::SessionState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::SessionState> state_;
};

}  // namespace ph::peerhood
