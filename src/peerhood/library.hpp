// PeerHood Library — thesis §4.2.2.
//
// "PeerHood library provides a local socket interface which could be used
// in handling communication between PHD and PeerHood-enabled applications.
// This library is used by the applications to request information from PHD
// and to request for connecting to remote services. [...] It is also used
// to register services into PHD and transmit data between devices."
//
// PeerHood is the one class applications hold: register services (with an
// accept handler for incoming sessions), browse the neighbourhood the PHD
// maintains, and connect to remote services — receiving a Connection with
// seamless-connectivity support.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "peerhood/connection.hpp"
#include "peerhood/daemon.hpp"
#include "peerhood/types.hpp"
#include "util/result.hpp"

namespace ph::peerhood {

/// Invoked for every new inbound session on a registered service.
using AcceptHandler = std::function<void(Connection)>;
/// Completion of an asynchronous connect.
using ConnectCallback = std::function<void(Result<Connection>)>;

class PeerHood {
 public:
  /// Binds to the device's daemon (the real middleware opens a local
  /// socket; in the simulator daemon and application share the process).
  explicit PeerHood(Daemon& daemon);
  ~PeerHood();
  PeerHood(const PeerHood&) = delete;
  PeerHood& operator=(const PeerHood&) = delete;

  Daemon& daemon() noexcept { return daemon_; }
  DeviceId self() const noexcept { return daemon_.self(); }

  // --- service side -------------------------------------------------------
  /// Registers `name` in the PHD, starts listening on every radio and
  /// invokes `on_accept` for each inbound session (Figure 8's
  /// pRegisterService + pListen loop).
  Result<void> register_service(
      const std::string& name,
      std::map<std::string, std::string> attributes,
      AcceptHandler on_accept);

  Result<void> unregister_service(const std::string& name);

  // --- client side ----------------------------------------------------------
  /// Opens a session to `service` on `device` (Figure 9's pConnect). Radios
  /// are tried best-signal-first. Completion is asynchronous; on success
  /// the Connection is already usable.
  void connect(DeviceId device, const std::string& service,
               ConnectOptions options, ConnectCallback done);

  // --- PHD passthrough ------------------------------------------------------
  std::vector<DeviceInfo> devices() const { return daemon_.devices(); }
  std::vector<std::pair<DeviceInfo, ServiceInfo>> find_service(
      std::string_view name) const {
    return daemon_.find_service(name);
  }

 private:
  struct ServiceEndpoint {
    ServiceInfo info;
    AcceptHandler on_accept;
    /// Live sessions by id — RESUME looks its session up here.
    std::map<std::uint64_t, std::weak_ptr<detail::SessionState>> sessions;
  };

  void accept_channel(const std::shared_ptr<ServiceEndpoint>& endpoint,
                      transport::Channel channel);
  /// Next free application port (>= 1000); wraps at 65535 and skips ports
  /// still bound to a registered service. Returns 0 when every port is
  /// taken.
  net::Port allocate_port();
  void try_connect(std::shared_ptr<detail::SessionState> state,
                   std::vector<NetworkPlugin*> candidates, std::size_t index,
                   Error last_error, ConnectCallback done);

  Daemon& daemon_;
  // shared_ptr: in-flight handshakes hold weak references, so unregistering
  // a service while a link is mid-handshake stays safe.
  std::map<std::string, std::shared_ptr<ServiceEndpoint>> endpoints_;
  /// Sessions of since-unregistered services: they keep running without
  /// their endpoint, but the destructor must still be able to release
  /// their callbacks (see ~PeerHood).
  std::vector<std::weak_ptr<detail::SessionState>> detached_sessions_;
  net::Port next_port_ = 1000;
};

}  // namespace ph::peerhood
