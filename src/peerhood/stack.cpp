#include "peerhood/stack.hpp"

#include "transport/sim_transport.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace ph::peerhood {

namespace {

/// Best-effort: the flag asks, the transport decides. Sim has no ops
/// server and that must not abort a scenario that also runs on sockets.
void maybe_enable_ops_server(transport::Transport& transport,
                             const StackConfig& config) {
  if (!config.ops_server) return;
  if (auto started = transport.enable_ops_server(); !started) {
    PH_LOG(warn, "stack") << "ops server unavailable: "
                          << started.error().to_string();
  }
}

}  // namespace

Stack::Stack(transport::Transport& transport, StackConfig config,
             std::unique_ptr<sim::MobilityModel> mobility)
    : transport_(transport) {
  maybe_enable_ops_server(transport_, config);
  id_ = transport_.add_device(config.device_name, std::move(mobility));
  daemon_ = std::make_unique<Daemon>(transport_, id_, config.device_name,
                                     config.daemon);
  for (const net::TechProfile& profile : config.radios) {
    transport::Endpoint& endpoint = transport_.add_endpoint(id_, profile);
    PH_CHECK(bool(daemon_->add_plugin(make_plugin(endpoint))));
  }
  library_ = std::make_unique<PeerHood>(*daemon_);
  if (config.autostart) (void)daemon_->start();
}

namespace {

transport::Transport& require_transport(const StackConfig& config) {
  PH_CHECK_MSG(config.transport != nullptr,
               "StackConfig needs with_transport(...) for this constructor");
  return *config.transport;
}

}  // namespace

Stack::Stack(StackConfig config, std::unique_ptr<sim::MobilityModel> mobility)
    : Stack(require_transport(config), std::move(config),
            std::move(mobility)) {}

Stack::Stack(net::Medium& medium, std::unique_ptr<sim::MobilityModel> mobility,
             StackConfig config)
    : owned_transport_(std::make_unique<transport::SimTransport>(medium)),
      transport_(*owned_transport_) {
  maybe_enable_ops_server(transport_, config);
  id_ = transport_.add_device(config.device_name, std::move(mobility));
  daemon_ = std::make_unique<Daemon>(transport_, id_, config.device_name,
                                     config.daemon);
  for (const net::TechProfile& profile : config.radios) {
    transport::Endpoint& endpoint = transport_.add_endpoint(id_, profile);
    PH_CHECK(bool(daemon_->add_plugin(make_plugin(endpoint))));
  }
  library_ = std::make_unique<PeerHood>(*daemon_);
  if (config.autostart) (void)daemon_->start();
}

Result<void> Stack::set_radio_powered(net::Technology tech, bool on) {
  transport::Endpoint* endpoint = transport_.endpoint(id_, tech);
  if (endpoint == nullptr) {
    return Error{Errc::not_supported,
                 name() + " has no " + std::string(net::to_string(tech)) +
                     " radio"};
  }
  endpoint->set_powered(on);
  return ok();
}

void Stack::blackout() {
  daemon_->stop();
  for (const auto& plugin : daemon_->plugins()) {
    plugin->endpoint().set_powered(false);
  }
}

void Stack::restart() {
  for (const auto& plugin : daemon_->plugins()) {
    plugin->endpoint().set_powered(true);
  }
  // Radios are back on and plugins exist, so a restart cannot fail here.
  (void)daemon_->restart();
}

}  // namespace ph::peerhood
