#include "peerhood/stack.hpp"

namespace ph::peerhood {

Stack::Stack(net::Medium& medium, std::unique_ptr<sim::MobilityModel> mobility,
             StackConfig config)
    : medium_(medium) {
  id_ = medium_.add_node(config.device_name, std::move(mobility));
  daemon_ = std::make_unique<Daemon>(medium_, id_, config.device_name,
                                     config.daemon);
  for (const net::TechProfile& profile : config.radios) {
    net::Adapter& adapter = medium_.add_adapter(id_, profile);
    daemon_->add_plugin(make_plugin(adapter));
  }
  library_ = std::make_unique<PeerHood>(*daemon_);
  if (config.autostart) daemon_->start();
}

void Stack::set_radio_powered(net::Technology tech, bool on) {
  if (net::Adapter* adapter = medium_.adapter(id_, tech)) {
    adapter->set_powered(on);
  }
}

void Stack::blackout() {
  daemon_->stop();
  for (const auto& plugin : daemon_->plugins()) {
    plugin->adapter().set_powered(false);
  }
}

void Stack::restart() {
  for (const auto& plugin : daemon_->plugins()) {
    plugin->adapter().set_powered(true);
  }
  daemon_->restart();
}

}  // namespace ph::peerhood
