#include "peerhood/plugin.hpp"

#include <cassert>

namespace ph::peerhood {

std::unique_ptr<NetworkPlugin> make_bt_plugin(net::Adapter& adapter) {
  assert(adapter.technology() == net::Technology::bluetooth);
  return std::make_unique<AdapterPlugin>("BTPlugin", adapter, 0);
}

std::unique_ptr<NetworkPlugin> make_wlan_plugin(net::Adapter& adapter) {
  assert(adapter.technology() == net::Technology::wlan);
  return std::make_unique<AdapterPlugin>("WLANPlugin", adapter, 1);
}

std::unique_ptr<NetworkPlugin> make_gprs_plugin(net::Adapter& adapter) {
  assert(adapter.technology() == net::Technology::gprs);
  return std::make_unique<AdapterPlugin>("GPRSPlugin", adapter, 2);
}

std::unique_ptr<NetworkPlugin> make_plugin(net::Adapter& adapter) {
  switch (adapter.technology()) {
    case net::Technology::bluetooth: return make_bt_plugin(adapter);
    case net::Technology::wlan: return make_wlan_plugin(adapter);
    case net::Technology::gprs: return make_gprs_plugin(adapter);
  }
  assert(false && "unknown technology");
  return nullptr;
}

}  // namespace ph::peerhood
