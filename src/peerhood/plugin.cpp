#include "peerhood/plugin.hpp"

#include <cassert>

#include "net/adapter.hpp"
#include "transport/sim_transport.hpp"

namespace ph::peerhood {

std::unique_ptr<NetworkPlugin> make_bt_plugin(transport::Endpoint& endpoint) {
  assert(endpoint.technology() == net::Technology::bluetooth);
  return std::make_unique<EndpointPlugin>("BTPlugin", endpoint, 0);
}

std::unique_ptr<NetworkPlugin> make_wlan_plugin(transport::Endpoint& endpoint) {
  assert(endpoint.technology() == net::Technology::wlan);
  return std::make_unique<EndpointPlugin>("WLANPlugin", endpoint, 1);
}

std::unique_ptr<NetworkPlugin> make_gprs_plugin(transport::Endpoint& endpoint) {
  assert(endpoint.technology() == net::Technology::gprs);
  return std::make_unique<EndpointPlugin>("GPRSPlugin", endpoint, 2);
}

std::unique_ptr<NetworkPlugin> make_plugin(transport::Endpoint& endpoint) {
  switch (endpoint.technology()) {
    case net::Technology::bluetooth: return make_bt_plugin(endpoint);
    case net::Technology::wlan: return make_wlan_plugin(endpoint);
    case net::Technology::gprs: return make_gprs_plugin(endpoint);
  }
  assert(false && "unknown technology");
  return nullptr;
}

namespace {

std::unique_ptr<NetworkPlugin> wrap(const char* name, net::Adapter& adapter,
                                    int preference) {
  return std::make_unique<EndpointPlugin>(name, transport::wrap_adapter(adapter),
                                          preference);
}

}  // namespace

std::unique_ptr<NetworkPlugin> make_bt_plugin(net::Adapter& adapter) {
  assert(adapter.technology() == net::Technology::bluetooth);
  return wrap("BTPlugin", adapter, 0);
}

std::unique_ptr<NetworkPlugin> make_wlan_plugin(net::Adapter& adapter) {
  assert(adapter.technology() == net::Technology::wlan);
  return wrap("WLANPlugin", adapter, 1);
}

std::unique_ptr<NetworkPlugin> make_gprs_plugin(net::Adapter& adapter) {
  assert(adapter.technology() == net::Technology::gprs);
  return wrap("GPRSPlugin", adapter, 2);
}

std::unique_ptr<NetworkPlugin> make_plugin(net::Adapter& adapter) {
  switch (adapter.technology()) {
    case net::Technology::bluetooth: return make_bt_plugin(adapter);
    case net::Technology::wlan: return make_wlan_plugin(adapter);
    case net::Technology::gprs: return make_gprs_plugin(adapter);
  }
  assert(false && "unknown technology");
  return nullptr;
}

}  // namespace ph::peerhood
