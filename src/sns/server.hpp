// SnsServer — the centralized social networking site of the baseline.
//
// §3.2 of the thesis: "SNS needs a centralized server and a centralized
// database system. Users' registration and all other essential information
// are stored in the centralized database and users access the centralized
// server through a web page." This class is that server: one node in the
// simulated world, reached over the GPRS gateway, holding the global group
// and profile database and serving weight-accurate pages.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "obs/metrics.hpp"
#include "sns/protocol.hpp"
#include "sns/types.hpp"

namespace ph::sns {

/// HTTP-ish well-known port of the SNS front end.
inline constexpr net::Port kSnsPort = 80;

class SnsServer {
 public:
  /// Snapshot of the registry's `sns.server.d<node>.*` counters; the
  /// medium's per-world registry is the source of truth.
  /// Creates the server's node (static, position irrelevant: GPRS routes
  /// through the gateway) and starts listening.
  SnsServer(net::Medium& medium, SiteProfile site);

  net::NodeId node() const noexcept { return node_; }
  const SiteProfile& site() const noexcept { return site_; }

  // --- database ------------------------------------------------------------
  void add_group(const std::string& name);
  void add_member(const std::string& group, const std::string& member);
  void add_profile(const std::string& member, const std::string& about);
  std::vector<std::string> members_of(const std::string& group) const;
  bool has_group(const std::string& name) const { return groups_.contains(name); }
  /// Messages delivered to `member` ("sender: body" entries).
  std::vector<std::string> inbox_of(const std::string& member) const;
  /// Comments posted on `member`'s profile ("author: text" entries).
  std::vector<std::string> comments_on(const std::string& member) const;

  /// Pure page dispatch (unit-testable): the response for one request.
  PageResponse handle(const PageRequest& request);

  /// Typed view of the registry's `sns.server.d<node>.*` counters
  /// (`pages_served`, `bytes_served`, `joins`).
  obs::Snapshot stats() const;

 private:
  void on_accept(net::Link link);
  Bytes filler(std::uint64_t base_bytes, std::uint32_t weight_permille) const;

  net::Medium& medium_;
  SiteProfile site_;
  net::NodeId node_ = net::kInvalidNode;
  std::map<std::string, std::set<std::string>> groups_;
  std::map<std::string, std::string> profiles_;
  std::map<std::string, std::vector<std::string>> inboxes_;
  std::map<std::string, std::vector<std::string>> comments_;
  // Registry handles (`sns.server.d<node>.*`) into the medium's registry.
  std::string metric_prefix_;
  obs::Counter* c_pages_served_ = nullptr;
  obs::Counter* c_bytes_served_ = nullptr;
  obs::Counter* c_joins_ = nullptr;
};

}  // namespace ph::sns
