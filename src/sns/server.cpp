#include "net/medium.hpp"
#include "sns/server.hpp"

#include <memory>

#include "util/log.hpp"
#include "obs/prof.hpp"
#include "util/strings.hpp"

namespace ph::sns {

SnsServer::SnsServer(net::Medium& medium, SiteProfile site)
    : medium_(medium), site_(std::move(site)) {
  node_ = medium_.add_node(
      site_.name + "-datacenter",
      std::make_unique<sim::StaticMobility>(sim::Vec2{0.0, 0.0}));
  net::Adapter& adapter = medium_.add_adapter(node_, net::gprs());
  adapter.listen(kSnsPort, [this](net::Link link) { on_accept(link); });
  metric_prefix_ = "sns.server.d" + std::to_string(node_) + ".";
  const std::string& prefix = metric_prefix_;
  c_pages_served_ = &medium_.registry().counter(prefix + "pages_served");
  c_bytes_served_ = &medium_.registry().counter(prefix + "bytes_served");
  c_joins_ = &medium_.registry().counter(prefix + "joins");
}

obs::Snapshot SnsServer::stats() const {
  return medium_.registry().snapshot(metric_prefix_);
}

void SnsServer::add_group(const std::string& name) { groups_[name]; }

void SnsServer::add_member(const std::string& group, const std::string& member) {
  groups_[group].insert(member);
}

void SnsServer::add_profile(const std::string& member, const std::string& about) {
  profiles_[member] = about;
}

std::vector<std::string> SnsServer::members_of(const std::string& group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> SnsServer::inbox_of(const std::string& member) const {
  auto it = inboxes_.find(member);
  return it == inboxes_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> SnsServer::comments_on(const std::string& member) const {
  auto it = comments_.find(member);
  return it == comments_.end() ? std::vector<std::string>{} : it->second;
}

Bytes SnsServer::filler(std::uint64_t base_bytes,
                        std::uint32_t weight_permille) const {
  const std::uint64_t size = base_bytes * weight_permille / 1000;
  return Bytes(size, std::uint8_t{'x'});
}

PageResponse SnsServer::handle(const PageRequest& request) {
  c_pages_served_->inc();
  medium_.trace().add_event("sns.page", medium_.simulator().now(), node_,
                            std::string(to_string(request.kind)));
  PageResponse response;
  response.kind = request.kind;
  switch (request.kind) {
    case PageKind::home:
      response.body = filler(site_.home_page_bytes, request.weight_permille);
      break;
    case PageKind::search: {
      // Case-insensitive substring search over group names.
      const std::string needle = to_lower(request.query);
      for (const auto& [name, members] : groups_) {
        (void)members;
        if (to_lower(name).find(needle) != std::string::npos) {
          response.names.push_back(name);
        }
      }
      if (response.names.empty()) response.status = PageStatus::not_found;
      response.body = filler(site_.search_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::group: {
      if (!groups_.contains(request.query)) {
        response.status = PageStatus::not_found;
      }
      response.body = filler(site_.group_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::join: {
      auto it = groups_.find(request.query);
      if (it == groups_.end() || request.member.empty()) {
        response.status = PageStatus::not_found;
      } else {
        it->second.insert(request.member);
        c_joins_->inc();
      }
      response.body = filler(site_.confirm_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::member_list: {
      auto it = groups_.find(request.query);
      if (it == groups_.end()) {
        response.status = PageStatus::not_found;
      } else {
        response.names.assign(it->second.begin(), it->second.end());
      }
      response.body =
          filler(site_.member_list_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::profile: {
      auto it = profiles_.find(request.query);
      if (it == profiles_.end()) {
        response.status = PageStatus::not_found;
      } else {
        response.names.push_back(it->second);
        // Profile pages show their comments too.
        auto comments = comments_.find(request.query);
        if (comments != comments_.end()) {
          response.names.insert(response.names.end(), comments->second.begin(),
                                comments->second.end());
        }
      }
      response.body = filler(site_.profile_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::compose: {
      response.body = filler(site_.compose_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::send_message: {
      if (request.query.empty() || !profiles_.contains(request.query)) {
        response.status = PageStatus::not_found;
      } else {
        inboxes_[request.query].push_back(request.member + ": " + request.text);
      }
      response.body = filler(site_.confirm_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::post_comment: {
      if (request.query.empty() || !profiles_.contains(request.query)) {
        response.status = PageStatus::not_found;
      } else {
        comments_[request.query].push_back(request.member + ": " + request.text);
      }
      response.body = filler(site_.confirm_page_bytes, request.weight_permille);
      break;
    }
    case PageKind::inbox: {
      auto it = inboxes_.find(request.member);
      if (it != inboxes_.end()) response.names = it->second;
      response.body = filler(site_.inbox_page_bytes, request.weight_permille);
      break;
    }
  }
  c_bytes_served_->inc(response.body.size());
  return response;
}

void SnsServer::on_accept(net::Link link) {
  auto holder = std::make_shared<net::Link>(link);
  link.on_receive([this, holder](BytesView data) {
    auto request = decode_page_request(data);
    if (!request) {
      PH_LOG(warn, "sns") << site_.name << ": bad page request";
      return;
    }
    // Server-side processing time before the page starts downloading.
    const PageResponse response = handle(*request);
    const obs::prof::TagScope tag(obs::prof::Center::sns_task);
    medium_.simulator().schedule(
        site_.server_processing, [holder, payload = encode(response)] {
          if (holder->open()) holder->send(payload);
        });
  });
  link.on_break([holder] {});  // keepalive ends with the browser's task
}

}  // namespace ph::sns
