#include "net/medium.hpp"
#include "sns/browser.hpp"

#include <memory>

#include "util/log.hpp"

namespace ph::sns {

struct BrowserClient::TaskState {
  net::Link link;
  std::vector<PageRequest> pages;
  std::size_t next = 0;
  sim::Time started = 0;
  std::vector<std::string> last_names;
  TaskCallback done;
  bool finished = false;
  /// The task's root trace span (`sns.task`); page fetches run under it.
  obs::SpanId span = 0;
};

BrowserClient::BrowserClient(net::Medium& medium, DeviceClass device,
                             net::NodeId server_node, std::string username)
    : medium_(medium),
      device_(std::move(device)),
      server_node_(server_node),
      username_(std::move(username)) {
  node_ = medium_.add_node(
      device_.name + ":" + username_,
      std::make_unique<sim::StaticMobility>(sim::Vec2{0.0, 0.0}));
  medium_.add_adapter(node_, net::gprs());
}

void BrowserClient::run_task(std::vector<PageRequest> pages,
                             sim::Duration pre_think, TaskCallback done) {
  auto state = std::make_shared<TaskState>();
  state->pages = std::move(pages);
  state->done = std::move(done);
  state->started = medium_.simulator().now();
  for (PageRequest& page : state->pages) {
    page.member = username_;
    page.weight_permille =
        static_cast<std::uint32_t>(device_.page_weight_factor * 1000.0);
  }

  // The whole task (connect, every page round-trip, rendering, think time)
  // runs under one `sns.task` span named after the final page — which is
  // what names the Table-8 operation.
  obs::Trace& trace = medium_.trace();
  state->span = trace.begin_span(
      "sns.task", state->started, node_,
      std::string(to_string(state->pages.back().kind)));
  obs::Trace::Scope task_scope(trace, state->span);

  net::Adapter* adapter = medium_.adapter(node_, net::Technology::gprs);
  adapter->connect(server_node_, kSnsPort, [this, state,
                                            pre_think](Result<net::Link> link) {
    if (!link) {
      if (!state->finished) {
        state->finished = true;
        medium_.trace().end_span(state->span, medium_.simulator().now());
        state->done(link.error());
      }
      return;
    }
    state->link = *link;
    state->link.on_break([this, state] {
      if (state->finished) return;
      state->finished = true;
      medium_.trace().end_span(state->span, medium_.simulator().now());
      state->done(Error{Errc::connection_lost, "GPRS session dropped"});
    });
    state->link.on_receive([this, state](BytesView data) {
      if (state->finished) return;
      auto response = decode_page_response(data);
      if (!response) {
        state->finished = true;
        state->link.close();
        medium_.trace().end_span(state->span, medium_.simulator().now());
        state->done(response.error());
        return;
      }
      state->last_names = response->names;
      // Rendering the received page.
      const auto render = static_cast<sim::Duration>(
          device_.render_us_per_byte * static_cast<double>(data.size()));
      medium_.simulator().schedule(render, [this, state] {
        if (state->finished) return;
        if (state->next >= state->pages.size()) {
          state->finished = true;
          state->link.close();
          TaskResult result;
          result.elapsed = medium_.simulator().now() - state->started;
          result.names = std::move(state->last_names);
          medium_.trace().end_span(state->span, medium_.simulator().now());
          state->done(result);
          return;
        }
        // User navigates to the next page.
        medium_.simulator().schedule(device_.click_think, [this, state] {
          fetch_next(state);
        });
      });
    });
    // The user's pre-task interaction (e.g. typing the query) happens
    // while the home page is already on screen; model it up front.
    medium_.simulator().schedule(pre_think,
                                 [this, state] { fetch_next(state); });
  });
}

void BrowserClient::fetch_next(std::shared_ptr<TaskState> state) {
  if (state->finished || state->next >= state->pages.size()) return;
  const PageRequest& page = state->pages[state->next++];
  // Page sends run in the task's context so the uplink flight span (and the
  // server's page handling on the far device) parent under `sns.task`.
  obs::Trace::Scope task_scope(medium_.trace(), state->span);
  if (state->link.open()) state->link.send(encode(page));
}

void BrowserClient::search_group(const std::string& query, TaskCallback done) {
  // Home page, type the query, results page.
  std::vector<PageRequest> pages;
  pages.push_back({PageKind::home, "", "", "", 1000});
  pages.push_back({PageKind::search, query, "", "", 1000});
  run_task(std::move(pages), device_.typing, std::move(done));
}

void BrowserClient::join_group(const std::string& group, TaskCallback done) {
  std::vector<PageRequest> pages;
  pages.push_back({PageKind::group, group, "", "", 1000});
  pages.push_back({PageKind::join, group, "", "", 1000});
  run_task(std::move(pages), device_.click_think, std::move(done));
}

void BrowserClient::view_member_list(const std::string& group,
                                     TaskCallback done) {
  std::vector<PageRequest> pages;
  pages.push_back({PageKind::member_list, group, "", "", 1000});
  run_task(std::move(pages), device_.click_think, std::move(done));
}

void BrowserClient::view_profile(const std::string& member,
                                 TaskCallback done) {
  std::vector<PageRequest> pages;
  pages.push_back({PageKind::profile, member, "", "", 1000});
  run_task(std::move(pages), device_.click_think, std::move(done));
}

void BrowserClient::send_message(const std::string& receiver,
                                 const std::string& text, TaskCallback done) {
  std::vector<PageRequest> pages;
  pages.push_back({PageKind::compose, receiver, "", "", 1000});
  pages.push_back({PageKind::send_message, receiver, "", text, 1000});
  // Typing the message happens between the form and the POST; approximate
  // it with the typing think time up front (same modelling as search).
  run_task(std::move(pages), device_.typing, std::move(done));
}

void BrowserClient::post_comment(const std::string& member,
                                 const std::string& text, TaskCallback done) {
  std::vector<PageRequest> pages;
  pages.push_back({PageKind::profile, member, "", "", 1000});
  pages.push_back({PageKind::post_comment, member, "", text, 1000});
  run_task(std::move(pages), device_.typing, std::move(done));
}

void BrowserClient::read_inbox(TaskCallback done) {
  std::vector<PageRequest> pages;
  pages.push_back({PageKind::inbox, "", "", "", 1000});
  run_task(std::move(pages), device_.click_think, std::move(done));
}

}  // namespace ph::sns
