#include "sns/types.hpp"

namespace ph::sns {

SiteProfile facebook() {
  SiteProfile p;
  p.name = "Facebook";
  p.home_page_bytes = 70'000;
  p.search_page_bytes = 80'000;
  p.group_page_bytes = 45'000;
  p.confirm_page_bytes = 12'000;
  p.member_list_page_bytes = 22'000;
  p.profile_page_bytes = 34'000;
  p.server_processing = sim::milliseconds(350);
  return p;
}

SiteProfile hi5() {
  SiteProfile p;
  p.name = "HI5";
  p.home_page_bytes = 55'000;
  p.search_page_bytes = 65'000;
  p.group_page_bytes = 60'000;
  p.confirm_page_bytes = 20'000;
  p.member_list_page_bytes = 55'000;
  p.profile_page_bytes = 85'000;
  p.server_processing = sim::milliseconds(600);
  return p;
}

DeviceClass nokia_n810() {
  DeviceClass d;
  d.name = "Nokia N810";
  d.render_us_per_byte = 30.0;  // 30 us/byte: ~2.1 s for a 70 kB page
  d.page_weight_factor = 1.0;
  d.click_think = sim::seconds(2);
  d.typing = sim::seconds(6);
  return d;
}

DeviceClass nokia_n95() {
  DeviceClass d;
  d.name = "Nokia N95";
  d.render_us_per_byte = 90.0;  // weaker CPU and browser engine
  d.page_weight_factor = 1.6;    // served heavier page variants
  d.click_think = sim::seconds(3);
  d.typing = sim::seconds(8);
  return d;
}

}  // namespace ph::sns
