// Wire format between the browser model and the SNS server.
//
// One request/response pair per page load. Responses carry real result
// data (group names, member lists) plus a filler blob sized to the page
// weight, so the simulated GPRS link computes the transfer time the same
// way it does for every other byte in the system.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::sns {

enum class PageKind : std::uint8_t {
  home = 1,         ///< front page after login
  search = 2,       ///< search results for `query`
  group = 3,        ///< a group's landing page
  join = 4,         ///< join POST + confirmation page
  member_list = 5,  ///< members of `query`
  profile = 6,      ///< profile of member `query`
  compose = 7,      ///< the "write a message" form page
  send_message = 8, ///< message POST (`query` = receiver, body in `text`)
  post_comment = 9, ///< profile-comment POST (`query` = member)
  inbox = 10,       ///< the member's message inbox page
};

std::string_view to_string(PageKind kind) noexcept;

struct PageRequest {
  PageKind kind = PageKind::home;
  std::string query;   ///< group name / search terms / member id / receiver
  std::string member;  ///< acting user (join records membership)
  std::string text;    ///< message body / comment text for POST pages
  /// Page-variant weight in permille (DeviceClass::page_weight_factor).
  std::uint32_t weight_permille = 1000;

  friend bool operator==(const PageRequest&, const PageRequest&) = default;
};

enum class PageStatus : std::uint8_t { ok = 0, not_found = 1 };

struct PageResponse {
  PageKind kind = PageKind::home;
  PageStatus status = PageStatus::ok;
  std::vector<std::string> names;  ///< groups found / members listed
  Bytes body;                      ///< page filler sized to the page weight

  friend bool operator==(const PageResponse&, const PageResponse&) = default;
};

Bytes encode(const PageRequest& request);
Bytes encode(const PageResponse& response);
Result<PageRequest> decode_page_request(BytesView data);
Result<PageResponse> decode_page_response(BytesView data);

}  // namespace ph::sns
