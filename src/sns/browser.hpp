// BrowserClient — a mobile browser driving SNS tasks (thesis Table 8).
//
// Each task is the page sequence a user walks through on the 2008-era
// mobile web:
//
//   search_group   : load home page, type the query, load search results
//   join_group     : open the group page, click join, load confirmation
//   view_members   : open the group's member-list page
//   view_profile   : open one member's profile page
//
// Every page load is: request upstream over GPRS, server processing, page
// body downstream at GPRS bandwidth, then rendering time proportional to
// page bytes; user think time separates the pages. All durations are
// virtual-time measurements — the bench simply reads them out.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "sns/protocol.hpp"
#include "sns/server.hpp"
#include "sns/types.hpp"
#include "util/result.hpp"

namespace ph::sns {

class BrowserClient {
 public:
  /// Outcome of one task: how long it took and what the last page showed.
  struct TaskResult {
    sim::Duration elapsed = 0;
    std::vector<std::string> names;  ///< groups found / members / profile
  };
  using TaskCallback = std::function<void(Result<TaskResult>)>;

  /// Creates the handset's node with a GPRS radio.
  BrowserClient(net::Medium& medium, DeviceClass device,
                net::NodeId server_node, std::string username);

  const DeviceClass& device() const noexcept { return device_; }
  net::NodeId node() const noexcept { return node_; }

  /// Home page + typing + search results.
  void search_group(const std::string& query, TaskCallback done);
  /// Group page + join POST + confirmation.
  void join_group(const std::string& group, TaskCallback done);
  /// The group's member-list page.
  void view_member_list(const std::string& group, TaskCallback done);
  /// One member's profile page.
  void view_profile(const std::string& member, TaskCallback done);
  /// Compose form + typing the text + the message POST.
  void send_message(const std::string& receiver, const std::string& text,
                    TaskCallback done);
  /// Profile page + typing the comment + the comment POST.
  void post_comment(const std::string& member, const std::string& text,
                    TaskCallback done);
  /// The inbox page.
  void read_inbox(TaskCallback done);

 private:
  struct TaskState;

  /// Runs `pages` in order with think time between them; the last
  /// response's names become the task result.
  void run_task(std::vector<PageRequest> pages, sim::Duration pre_think,
                TaskCallback done);
  void fetch_next(std::shared_ptr<TaskState> state);

  net::Medium& medium_;
  DeviceClass device_;
  net::NodeId server_node_;
  net::NodeId node_ = net::kInvalidNode;
  std::string username_;
};

}  // namespace ph::sns
