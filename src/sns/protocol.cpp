#include "sns/protocol.hpp"

#include "proto/codec.hpp"

namespace ph::sns {

std::string_view to_string(PageKind kind) noexcept {
  switch (kind) {
    case PageKind::home: return "home";
    case PageKind::search: return "search";
    case PageKind::group: return "group";
    case PageKind::join: return "join";
    case PageKind::member_list: return "member_list";
    case PageKind::profile: return "profile";
    case PageKind::compose: return "compose";
    case PageKind::send_message: return "send_message";
    case PageKind::post_comment: return "post_comment";
    case PageKind::inbox: return "inbox";
  }
  return "?";
}

Bytes encode(const PageRequest& request) {
  proto::Writer w;
  w.u8(static_cast<std::uint8_t>(request.kind));
  w.str(request.query);
  w.str(request.member);
  w.str(request.text);
  w.u32(request.weight_permille);
  return std::move(w).take();
}

Result<PageRequest> decode_page_request(BytesView data) {
  proto::Reader r(data);
  PageRequest request;
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (*kind < 1 || *kind > static_cast<std::uint8_t>(PageKind::inbox)) {
    return Error{Errc::protocol_error, "unknown page kind"};
  }
  request.kind = static_cast<PageKind>(*kind);
  auto query = r.str();
  if (!query) return query.error();
  request.query = std::move(*query);
  auto member = r.str();
  if (!member) return member.error();
  request.member = std::move(*member);
  auto text = r.str();
  if (!text) return text.error();
  request.text = std::move(*text);
  auto weight = r.u32();
  if (!weight) return weight.error();
  request.weight_permille = *weight;
  return request;
}

Bytes encode(const PageResponse& response) {
  proto::Writer w;
  w.u8(static_cast<std::uint8_t>(response.kind));
  w.u8(static_cast<std::uint8_t>(response.status));
  w.str_list(response.names);
  w.bytes(response.body);
  return std::move(w).take();
}

Result<PageResponse> decode_page_response(BytesView data) {
  proto::Reader r(data);
  PageResponse response;
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (*kind < 1 || *kind > static_cast<std::uint8_t>(PageKind::inbox)) {
    return Error{Errc::protocol_error, "unknown page kind"};
  }
  response.kind = static_cast<PageKind>(*kind);
  auto status = r.u8();
  if (!status) return status.error();
  if (*status > static_cast<std::uint8_t>(PageStatus::not_found)) {
    return Error{Errc::protocol_error, "unknown page status"};
  }
  response.status = static_cast<PageStatus>(*status);
  auto names = r.str_list();
  if (!names) return names.error();
  response.names = std::move(*names);
  auto body = r.bytes();
  if (!body) return body.error();
  response.body = std::move(*body);
  return response;
}

}  // namespace ph::sns
