// Site and device models for the SNS baseline (thesis Table 8).
//
// The thesis timed four tasks (search an interest group, join it, view its
// member list, view one member's profile) on facebook.com and hi5.com from
// a Nokia N810 and a Nokia N95 over a cellular connection, against the
// PeerHood Community reference application over Bluetooth.
//
// This module reproduces the SNS side *mechanistically*: every task is a
// sequence of page loads over the simulated GPRS path (request up, page
// body down at GPRS bandwidth, operator-gateway latency on each hop),
// plus server processing, browser rendering and user navigation time.
// Page weights and device factors are calibrated so the absolute times
// land in the neighbourhood the thesis measured; what the bench asserts is
// the *shape* — SNS tasks cost multiple heavyweight page loads while
// PeerHood answers from the local radio neighbourhood, and the dynamic
// group join costs exactly zero.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace ph::sns {

/// Page-weight profile of one social networking site.
struct SiteProfile {
  std::string name;
  std::uint64_t home_page_bytes = 60'000;
  std::uint64_t search_page_bytes = 70'000;   ///< search results
  std::uint64_t group_page_bytes = 50'000;    ///< a group's landing page
  std::uint64_t confirm_page_bytes = 12'000;  ///< post-join confirmation
  std::uint64_t member_list_page_bytes = 25'000;
  std::uint64_t profile_page_bytes = 40'000;  ///< member profile with photos
  std::uint64_t compose_page_bytes = 15'000;  ///< the "write message" form
  std::uint64_t inbox_page_bytes = 30'000;    ///< message inbox listing
  sim::Duration server_processing = sim::milliseconds(400);
};

/// Facebook circa 2008: heavy pages, fast servers.
SiteProfile facebook();
/// Hi5 circa 2008: lighter landing/search pages, heavier lists/profiles.
SiteProfile hi5();

/// Browser/device model for one handset class.
struct DeviceClass {
  std::string name;
  /// Rendering cost in microseconds per byte of page content.
  double render_us_per_byte = 30.0;
  /// Page-variant weight multiplier (a weaker browser is served — or
  /// requests — heavier, less optimized pages).
  double page_weight_factor = 1.0;
  /// User navigation pause between pages (find the link, click).
  sim::Duration click_think = sim::seconds(2);
  /// Typing the search query.
  sim::Duration typing = sim::seconds(6);
};

/// Nokia N810 internet tablet: capable browser, mobile-optimized pages.
DeviceClass nokia_n810();
/// Nokia N95 smartphone: slower rendering, heavier page variants.
DeviceClass nokia_n95();

}  // namespace ph::sns
