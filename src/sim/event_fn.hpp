// EventFn — a move-only, small-buffer-optimized callable for simulator
// events.
//
// Every scheduled event used to carry a `std::function<void()>`, whose
// small-object buffer (16 bytes in libstdc++) is far too small for the
// Medium's delivery closures (this + endpoints + span id + payload handle
// ≈ 60–90 bytes), so steady-state scheduling heap-allocated one closure
// per event. EventFn inlines up to kInlineSize bytes of capture state in
// the queue entry itself; only outsized closures (link-open continuations
// that carry a whole TechProfile) fall back to the heap. The allocation
// test (tests/sim/sim_alloc_test.cpp) interposes operator new to assert
// the steady-state event loop performs zero allocations per event.
//
// Unlike std::function it is move-only (captured payloads need no copy),
// but like std::function it may be invoked repeatedly — periodic tasks
// re-use the same stored callable across occurrences.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ph::sim {

class EventFn {
 public:
  /// Inline capture capacity. Sized so the hot networking closures
  /// (datagram/link-frame delivery: this pointer, endpoints, trace span,
  /// pooled payload handle) stay in-queue, while keeping a queue entry at
  /// two cache lines.
  static constexpr std::size_t kInlineSize = 96;

  EventFn() noexcept = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                     std::is_invocable_v<D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &heap_ops<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable lives inline in the queue entry (no heap).
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable into `dst` from `src` and destroys the
    /// source — the queue relocates entries during heap sifts and slot
    /// cascades.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <class D>
  static constexpr Ops inline_ops = {
      [](void* storage) { (*std::launder(reinterpret_cast<D*>(storage)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<D*>(storage))->~D();
      },
      true,
  };

  template <class D>
  static constexpr Ops heap_ops = {
      [](void* storage) {
        (**std::launder(reinterpret_cast<D**>(storage)))();
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* storage) noexcept {
        delete *std::launder(reinterpret_cast<D**>(storage));
      },
      false,
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace ph::sim
