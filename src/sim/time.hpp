// Virtual time for the discrete-event simulator.
//
// Time is an integral count of microseconds since simulation start. All
// latencies in the stack (radio propagation, inquiry scans, page renders)
// are expressed as Duration values, so a whole experiment is deterministic
// and independent of wall-clock speed.
#pragma once

#include <cstdint>
#include <string>

namespace ph::sim {

/// Microseconds since simulation start.
using Time = std::uint64_t;

/// A span of virtual time in microseconds.
using Duration = std::uint64_t;

constexpr Duration microseconds(std::uint64_t us) { return us; }
constexpr Duration milliseconds(std::uint64_t ms) { return ms * 1'000; }
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * 1'000'000.0);
}
constexpr Duration minutes(double m) { return seconds(m * 60.0); }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1'000'000.0;
}
constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / 1'000.0;
}

/// "12.345s" — for logs and bench labels.
std::string format_duration(Duration d);

}  // namespace ph::sim
