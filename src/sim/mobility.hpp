// Mobility models: each node's position as a pure function of virtual time.
//
// Position-as-function keeps the kernel simple — the radio Medium samples
// positions lazily when it needs reachability, so no per-tick movement
// events exist. Models:
//   StaticMobility      — fixed position (the thesis' desktop PCs)
//   LinearMobility      — constant velocity from a start point (walk-through,
//                         drive-by; how devices enter/leave range)
//   WaypointMobility    — piecewise-linear path through timed waypoints
//                         (scripted scenarios: enter café, sit, leave)
//   RandomWaypoint      — classic random waypoint inside a rectangle
//                         (campus crowd churn), deterministic via seed
#pragma once

#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"

namespace ph::sim {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  /// Position at virtual time t. Must be callable for any t (monotonic calls
  /// are typical but not required for the deterministic models).
  virtual Vec2 position_at(Time t) = 0;
};

class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_(pos) {}
  Vec2 position_at(Time) override { return pos_; }

 private:
  Vec2 pos_;
};

class LinearMobility final : public MobilityModel {
 public:
  /// Starts at `origin` at t=start, moving with `velocity` metres/second.
  LinearMobility(Vec2 origin, Vec2 velocity_mps, Time start = 0)
      : origin_(origin), velocity_(velocity_mps), start_(start) {}

  Vec2 position_at(Time t) override {
    const double dt = t <= start_ ? 0.0 : to_seconds(t - start_);
    return origin_ + velocity_ * dt;
  }

 private:
  Vec2 origin_;
  Vec2 velocity_;
  Time start_;
};

class WaypointMobility final : public MobilityModel {
 public:
  struct Waypoint {
    Time at;
    Vec2 pos;
  };

  /// Waypoints must be sorted by time; position is held before the first
  /// and after the last, and linearly interpolated between neighbours.
  explicit WaypointMobility(std::vector<Waypoint> waypoints);

  Vec2 position_at(Time t) override;

 private:
  std::vector<Waypoint> waypoints_;
  /// Index of the last segment served; queries are overwhelmingly
  /// monotonic in time (the Medium samples at the advancing virtual
  /// clock), so checking it first makes lookup amortized O(1) instead of
  /// a binary search per sample. Pure lookup state — never affects the
  /// returned position.
  std::size_t segment_hint_ = 0;
};

class RandomWaypoint final : public MobilityModel {
 public:
  struct Config {
    Vec2 area_min{0, 0};
    Vec2 area_max{100, 100};
    double speed_min_mps = 0.5;
    double speed_max_mps = 2.0;   // pedestrian speeds
    Duration pause = seconds(5);  // dwell at each waypoint
  };

  RandomWaypoint(Config config, Rng rng);

  Vec2 position_at(Time t) override;

 private:
  /// Extends the precomputed leg list to cover time t.
  void extend_to(Time t);

  struct Leg {
    Time depart;      // when movement starts (after pause)
    Time arrive;      // when the destination is reached
    Vec2 from, to;
  };

  Config config_;
  Rng rng_;
  Vec2 current_;
  Time covered_until_ = 0;
  std::vector<Leg> legs_;
  std::size_t leg_hint_ = 0;  ///< last leg served; see WaypointMobility
};

}  // namespace ph::sim
