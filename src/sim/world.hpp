// 2-D geometry for the simulated radio world.
//
// Positions are metres. The thesis' test environment (ComLab room 6604,
// desktops + laptops within Bluetooth range) maps onto small coordinate
// extents; mobility scenarios (bus, campus) use larger ones.
#pragma once

#include <cmath>

namespace ph::sim {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 v, double k) { return {v.x * k, v.y * k}; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  double norm() const { return std::hypot(x, y); }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace ph::sim
