#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ph::sim {

// --- FlatIdSet --------------------------------------------------------------

bool FlatIdSet::insert(EventId id) {
  // 0 is the empty-slot marker and can never be stored; inserting it
  // would silently corrupt the occupancy count.
  if (id == 0) return false;
  if ((size_ + 1) * 2 > slots_.size()) grow();
  std::size_t i = mix(id) & mask();
  while (slots_[i] != 0) {
    if (slots_[i] == id) return false;
    i = (i + 1) & mask();
  }
  slots_[i] = id;
  ++size_;
  return true;
}

bool FlatIdSet::contains(EventId id) const noexcept {
  std::size_t i = mix(id) & mask();
  while (slots_[i] != 0) {
    if (slots_[i] == id) return true;
    i = (i + 1) & mask();
  }
  return false;
}

bool FlatIdSet::erase(EventId id) {
  // Erasing 0 would "find" the first empty slot (0 marks empties), shift
  // live entries around a fake hole and underflow size_ — and callers do
  // legitimately cancel zero-initialised (never-armed) event handles.
  if (id == 0) return false;
  std::size_t i = mix(id) & mask();
  while (slots_[i] != id) {
    if (slots_[i] == 0) return false;
    i = (i + 1) & mask();
  }
  // Backward-shift deletion: pull every displaced cluster member whose
  // home slot is at or before the hole back into it, leaving no tombstone.
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask();
    if (slots_[j] == 0) break;
    const std::size_t home = mix(slots_[j]) & mask();
    // Leave slots_[j] alone iff its home lies cyclically in (i, j].
    const bool home_in_range =
        i <= j ? (i < home && home <= j) : (i < home || home <= j);
    if (home_in_range) continue;
    slots_[i] = slots_[j];
    i = j;
  }
  slots_[i] = 0;
  --size_;
  return true;
}

void FlatIdSet::grow() {
  std::vector<EventId> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  size_ = 0;
  for (EventId id : old) {
    if (id != 0) insert(id);
  }
}

// --- BinaryHeapQueue --------------------------------------------------------

void BinaryHeapQueue::do_push(Time when, EventId id, EventFn fn,
                              std::uint8_t tag) {
  heap_.push_back(QueueEntry{when, id, tag, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), QueueLater{});
}

bool BinaryHeapQueue::pop_next(Time until, QueueEntry& out) {
  while (!heap_.empty()) {
    if (!live_.contains(heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end(), QueueLater{});
      heap_.pop_back();
      if (dead_ > 0) --dead_;
      continue;
    }
    if (heap_.front().when > until) return false;
    std::pop_heap(heap_.begin(), heap_.end(), QueueLater{});
    out = std::move(heap_.back());
    heap_.pop_back();
    return true;
  }
  return false;
}

void BinaryHeapQueue::compact() {
  std::erase_if(heap_,
                [this](const QueueEntry& e) { return !live_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), QueueLater{});
  dead_ = 0;
}

// --- TimerWheelQueue --------------------------------------------------------

TimerWheelQueue::TimerWheelQueue(const FlatIdSet& live)
    : EventQueue(live), slots_(kLevels * kSlots) {
  // Allocate at construction, not in operation: a slot vector's first
  // push_back would otherwise allocate mid-run whenever a drifting
  // periodic phase touches a fresh slot, defeating the zero-allocation
  // steady state. Busier slots grow past this once and keep their
  // high-water capacity.
  for (std::vector<QueueEntry>& bucket : slots_) bucket.reserve(4);
  due_.reserve(64);
  overflow_.reserve(64);
}

void TimerWheelQueue::set_bit(unsigned level, unsigned index) noexcept {
  occupied_[level * kWordsPerLevel + index / 64] |= 1ull << (index % 64);
}

void TimerWheelQueue::clear_bit(unsigned level, unsigned index) noexcept {
  occupied_[level * kWordsPerLevel + index / 64] &= ~(1ull << (index % 64));
}

int TimerWheelQueue::next_occupied(unsigned level,
                                   unsigned from) const noexcept {
  const std::uint64_t* words = &occupied_[level * kWordsPerLevel];
  unsigned word = from / 64;
  std::uint64_t bits = words[word] & (~0ull << (from % 64));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>(word * 64 +
                              static_cast<unsigned>(std::countr_zero(bits)));
    }
    if (++word == kWordsPerLevel) return -1;
    bits = words[word];
  }
}

void TimerWheelQueue::push_due(QueueEntry&& entry) {
  due_.push_back(std::move(entry));
  std::push_heap(due_.begin(), due_.end(), QueueLater{});
}

void TimerWheelQueue::place(QueueEntry&& entry) {
  if (entry.when < wheel_time_) {
    // Its window was already drained; the due heap establishes its order
    // against the entries drained with it.
    push_due(std::move(entry));
    return;
  }
  for (unsigned level = 0; level < kLevels; ++level) {
    if ((entry.when >> page_shift(level)) == (wheel_time_ >> page_shift(level))) {
      const unsigned index =
          static_cast<unsigned>(entry.when >> level_shift(level)) &
          (kSlots - 1);
      slot(level, index).push_back(std::move(entry));
      set_bit(level, index);
      return;
    }
  }
  overflow_.push_back(std::move(entry));
  std::push_heap(overflow_.begin(), overflow_.end(), QueueLater{});
}

void TimerWheelQueue::do_push(Time when, EventId id, EventFn fn,
                              std::uint8_t tag) {
  place(QueueEntry{when, id, tag, std::move(fn)});
  ++stored_;
}

void TimerWheelQueue::drain_overflow() {
  const unsigned top_shift = page_shift(kLevels - 1);
  while (!overflow_.empty() &&
         (overflow_.front().when >> top_shift) == (wheel_time_ >> top_shift)) {
    std::pop_heap(overflow_.begin(), overflow_.end(), QueueLater{});
    QueueEntry entry = std::move(overflow_.back());
    overflow_.pop_back();
    if (!live_.contains(entry.id)) {
      --stored_;
      if (dead_ > 0) --dead_;
      continue;
    }
    place(std::move(entry));
  }
}

void TimerWheelQueue::cascade(unsigned level, unsigned index) {
  std::vector<QueueEntry>& bucket = slot(level, index);
  // Take the bucket before re-placing: place() only touches levels below
  // this one (the entries now share the lower page with wheel_time_).
  for (QueueEntry& entry : bucket) {
    if (!live_.contains(entry.id)) {
      --stored_;
      if (dead_ > 0) --dead_;
      continue;
    }
    place(std::move(entry));
  }
  bucket.clear();
  clear_bit(level, index);
}

void TimerWheelQueue::enter_windows() {
  if ((wheel_time_ & ((Time{1} << page_shift(kLevels - 1)) - 1)) == 0) {
    drain_overflow();
  }
  for (unsigned level = kLevels - 1; level >= 1; --level) {
    if ((wheel_time_ & ((Time{1} << level_shift(level)) - 1)) != 0) continue;
    const unsigned index =
        static_cast<unsigned>(wheel_time_ >> level_shift(level)) &
        (kSlots - 1);
    cascade(level, index);
  }
}

bool TimerWheelQueue::advance(Time until) {
  for (;;) {
    // Level 0: the next occupied slot in the current page moves wholesale
    // into the due heap.
    {
      const std::uint64_t tick = wheel_time_ >> kTickShift;
      const unsigned cur = static_cast<unsigned>(tick) & (kSlots - 1);
      const int found = next_occupied(0, cur);
      if (found >= 0) {
        const std::uint64_t slot_tick =
            (tick & ~static_cast<std::uint64_t>(kSlots - 1)) |
            static_cast<unsigned>(found);
        const Time slot_start = slot_tick << kTickShift;
        if (slot_start > until) return false;
        std::vector<QueueEntry>& bucket =
            slot(0, static_cast<unsigned>(found));
        wheel_time_ = (slot_tick + 1) << kTickShift;
        for (QueueEntry& entry : bucket) {
          if (!live_.contains(entry.id)) {
            --stored_;
            if (dead_ > 0) --dead_;
            continue;
          }
          push_due(std::move(entry));
        }
        bucket.clear();
        clear_bit(0, static_cast<unsigned>(found));
        // Processing slot 255 rolls wheel_time_ onto the next level-1
        // window: cascade what we just entered before anything can be
        // scheduled into (and fired from) level 0 ahead of it.
        if ((wheel_time_ & ((Time{1} << level_shift(1)) - 1)) == 0) {
          enter_windows();
        }
        return true;
      }
    }

    // Level-0 page empty: step to this page's next occupied level-1 slot.
    // Slots behind and including the wheel's own index are empty — every
    // entered window was cascaded on entry — so the jump only skips empty
    // windows and wheel_time_ is monotonic.
    {
      const unsigned cur =
          static_cast<unsigned>(wheel_time_ >> level_shift(1)) & (kSlots - 1);
      const int found = next_occupied(1, cur);
      if (found >= 0) {
        const Time page_base =
            (wheel_time_ >> page_shift(1)) << page_shift(1);
        const Time slot_start =
            page_base | (static_cast<Time>(found) << level_shift(1));
        if (slot_start > until) return false;
        wheel_time_ = slot_start;
        cascade(1, static_cast<unsigned>(found));
        continue;
      }
    }

    // Level-1 page spent: same step at level 2. Entering a level-2 slot
    // lands on its first level-1 window, whose slot is necessarily empty
    // (nothing files into level 1 from outside the wheel's level-2 page),
    // so cascading just this slot is enough.
    {
      const unsigned cur =
          static_cast<unsigned>(wheel_time_ >> level_shift(2)) & (kSlots - 1);
      const int found = next_occupied(2, cur);
      if (found >= 0) {
        const Time page_base =
            (wheel_time_ >> page_shift(2)) << page_shift(2);
        const Time slot_start =
            page_base | (static_cast<Time>(found) << level_shift(2));
        if (slot_start > until) return false;
        wheel_time_ = slot_start;
        cascade(2, static_cast<unsigned>(found));
        continue;
      }
    }

    // Beyond the wheel: jump to the overflow top's page and pull it in.
    if (!overflow_.empty()) {
      const unsigned top_shift = page_shift(kLevels - 1);
      const Time page_start =
          (overflow_.front().when >> top_shift) << top_shift;
      if (page_start > until) return false;
      wheel_time_ = page_start;
      drain_overflow();
      continue;
    }
    return false;
  }
}

bool TimerWheelQueue::pop_next(Time until, QueueEntry& out) {
  for (;;) {
    while (!due_.empty() && !live_.contains(due_.front().id)) {
      std::pop_heap(due_.begin(), due_.end(), QueueLater{});
      due_.pop_back();
      --stored_;
      if (dead_ > 0) --dead_;
    }
    if (!due_.empty()) {
      if (due_.front().when > until) return false;
      std::pop_heap(due_.begin(), due_.end(), QueueLater{});
      out = std::move(due_.back());
      due_.pop_back();
      --stored_;
      return true;
    }
    if (stored_ == 0) return false;
    if (!advance(until)) return false;
  }
}

void TimerWheelQueue::compact() {
  const auto is_dead = [this](const QueueEntry& e) {
    return !live_.contains(e.id);
  };
  std::size_t removed = 0;
  removed += std::erase_if(due_, is_dead);
  std::make_heap(due_.begin(), due_.end(), QueueLater{});
  removed += std::erase_if(overflow_, is_dead);
  std::make_heap(overflow_.begin(), overflow_.end(), QueueLater{});
  for (unsigned level = 0; level < kLevels; ++level) {
    for (unsigned index = 0; index < kSlots; ++index) {
      std::vector<QueueEntry>& bucket = slot(level, index);
      if (bucket.empty()) continue;
      removed += std::erase_if(bucket, is_dead);
      if (bucket.empty()) clear_bit(level, index);
    }
  }
  stored_ -= removed;
  dead_ = 0;
}

}  // namespace ph::sim
