// Event queue implementations for the simulation kernel.
//
// The kernel's load is dominated by short-horizon periodic work — pings,
// inquiry scans, neighbour-table refreshes, frame deliveries milliseconds
// out — plus a thin tail of far-future timers (entry TTLs, watchdogs). A
// hierarchical timer wheel fits that shape: scheduling is O(1) bucket
// insertion instead of an O(log n) heap sift, and the far tail parks in
// coarser levels (or an overflow heap) without being re-sorted on every
// nearby event.
//
// Two implementations share one interface:
//
//   * TimerWheelQueue — 3 levels × 256 slots over a 1.024 ms base tick
//     (level spans: 0.26 s / 67 s / 4.77 h), overflow min-heap beyond.
//     A slot holds its entries unordered; when the wheel reaches a slot,
//     the whole slot is moved into a small (when, id)-ordered "due" heap
//     that establishes the exact global order. Everything strictly before
//     `drained_before()` lives in that heap — the invariant that makes
//     firing order identical to a single global heap, bit for bit.
//   * BinaryHeapQueue — the previous std::push_heap implementation, kept
//     as the reference for the lockstep property test and the wheel-vs-
//     heap microbenchmarks.
//
// Both order events by (when, id) where id is the insertion sequence, so
// equal timestamps fire FIFO — the determinism contract ph_chaos_
// determinism byte-compares. Cancellation is lazy (the Simulator's live
// set is the source of truth); dead entries are dropped when reached and
// compacted away once they dominate, mirroring the Medium's dead-link
// policy (dead >= 32 && 2*dead >= stored).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace ph::sim {

/// Identifies a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

/// Open-addressing hash set of live event ids. std::unordered_set
/// allocates a node per insert, which would defeat the zero-allocation
/// schedule() path; this probes a flat power-of-two array and erases with
/// backward shifting (no tombstones, no rehash-on-erase), so at steady
/// state membership churn touches no allocator.
class FlatIdSet {
 public:
  FlatIdSet() : slots_(kInitialSlots, 0) {}

  bool insert(EventId id);
  bool erase(EventId id);
  bool contains(EventId id) const noexcept;
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  static constexpr std::size_t kInitialSlots = 1024;  // power of two

  static std::size_t mix(EventId id) noexcept {
    return static_cast<std::size_t>(id * 0x9E3779B97F4A7C15ull);
  }
  std::size_t mask() const noexcept { return slots_.size() - 1; }
  void grow();

  std::vector<EventId> slots_;  // 0 = empty
  std::size_t size_ = 0;
};

/// One stored event. `id` doubles as the insertion sequence number, so
/// ordering by (when, id) is FIFO among equal timestamps. `tag` is the
/// obs::prof cost-center byte attached at schedule time; it rides along
/// so the dispatch loop can attribute the event without a lookup.
struct QueueEntry {
  Time when = 0;
  EventId id = 0;
  std::uint8_t tag = 0;
  EventFn fn;
};

/// max-heap comparator that puts the earliest (when, id) on top of
/// std::push_heap's max-heap.
struct QueueLater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.id > b.id;
  }
};

class EventQueue {
 public:
  /// `live` is the Simulator's id set — the authority on which stored
  /// entries are still scheduled. It must outlive the queue.
  explicit EventQueue(const FlatIdSet& live) : live_(live) {}
  virtual ~EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Stores an entry. Non-virtual so the cost-center tag can default in
  /// one place; implementations override do_push.
  void push(Time when, EventId id, EventFn fn, std::uint8_t tag = 0) {
    do_push(when, id, std::move(fn), tag);
  }

  /// Moves the earliest live entry with when <= until into `out`; false
  /// when there is none. Dead (cancelled) entries reached on the way are
  /// discarded.
  virtual bool pop_next(Time until, QueueEntry& out) = 0;

  /// Called by the Simulator after a successful cancel. Once dead entries
  /// dominate (same thresholds as Medium::note_dead_link) the queue
  /// compacts them away so cancel-heavy churn cannot accumulate closures.
  void note_cancelled() {
    ++dead_;
    if (dead_ >= 32 && dead_ * 2 >= stored()) compact();
  }

  /// Entries held (live + not-yet-collected dead).
  virtual std::size_t stored() const noexcept = 0;
  /// Cancelled entries still occupying queue storage — the
  /// `sim.queue.cancelled_live` gauge.
  std::size_t dead() const noexcept { return dead_; }

  virtual const char* name() const noexcept = 0;

 protected:
  virtual void do_push(Time when, EventId id, EventFn fn,
                       std::uint8_t tag) = 0;
  virtual void compact() = 0;

  const FlatIdSet& live_;
  std::size_t dead_ = 0;
};

/// The previous binary min-heap queue (reference implementation).
class BinaryHeapQueue final : public EventQueue {
 public:
  using EventQueue::EventQueue;

  bool pop_next(Time until, QueueEntry& out) override;
  std::size_t stored() const noexcept override { return heap_.size(); }
  const char* name() const noexcept override { return "binary_heap"; }

 private:
  void do_push(Time when, EventId id, EventFn fn, std::uint8_t tag) override;
  void compact() override;

  std::vector<QueueEntry> heap_;
};

/// Hierarchical timer wheel with an overflow heap for the far tail.
class TimerWheelQueue final : public EventQueue {
 public:
  explicit TimerWheelQueue(const FlatIdSet& live);

  bool pop_next(Time until, QueueEntry& out) override;
  std::size_t stored() const noexcept override { return stored_; }
  const char* name() const noexcept override { return "timer_wheel"; }

  /// Everything strictly before this time has been moved to the due heap;
  /// the wheel proper only holds entries at or after it. Exposed for the
  /// unit tests' invariant checks.
  Time drained_before() const noexcept { return wheel_time_; }
  /// Entries parked beyond the wheel's ~4.77 h horizon.
  std::size_t overflow_size() const noexcept { return overflow_.size(); }

 private:
  // Base tick 2^10 us = 1.024 ms; each level fans out 256× — level spans
  // 2^18 us (0.26 s), 2^26 us (67 s), 2^34 us (4.77 h).
  static constexpr unsigned kTickShift = 10;
  static constexpr unsigned kSlotBits = 8;
  static constexpr unsigned kSlots = 1u << kSlotBits;
  static constexpr unsigned kLevels = 3;
  static constexpr unsigned kWordsPerLevel = kSlots / 64;

  static constexpr unsigned level_shift(unsigned level) noexcept {
    return kTickShift + kSlotBits * level;
  }
  /// Shift that identifies a level's page: entries live at `level` iff
  /// their page bits (everything above the slot index) match the wheel's.
  static constexpr unsigned page_shift(unsigned level) noexcept {
    return kTickShift + kSlotBits * (level + 1);
  }

  std::vector<QueueEntry>& slot(unsigned level, unsigned index) noexcept {
    return slots_[level * kSlots + index];
  }

  void do_push(Time when, EventId id, EventFn fn, std::uint8_t tag) override;
  /// Files an entry into due/slot/overflow based on wheel_time_.
  void place(QueueEntry&& entry);
  void push_due(QueueEntry&& entry);
  /// First occupied slot index >= from at `level`, or -1.
  int next_occupied(unsigned level, unsigned from) const noexcept;
  void set_bit(unsigned level, unsigned index) noexcept;
  void clear_bit(unsigned level, unsigned index) noexcept;
  /// Advances the wheel to the next occupied window whose start is
  /// <= until, moving/cascading its entries. False if none qualifies.
  bool advance(Time until);
  /// Re-files one slot's entries against the current wheel_time_.
  void cascade(unsigned level, unsigned index);
  /// Called whenever wheel_time_ lands on a level-1 window boundary:
  /// cascades every higher-level slot whose window the wheel is entering,
  /// top level first. Keeping this invariant — a window is cascaded the
  /// moment the wheel enters it — is what stops a busy level 0 from
  /// starving entries parked one level up (they would otherwise fire
  /// after later-scheduled same-window events).
  void enter_windows();
  /// Pulls overflow entries whose page entered the wheel's range.
  void drain_overflow();
  void compact() override;

  Time wheel_time_ = 0;  // slot-boundary; see drained_before()
  std::size_t stored_ = 0;
  std::vector<QueueEntry> due_;       // (when, id) min-heap
  std::vector<QueueEntry> overflow_;  // (when, id) min-heap, far future
  std::vector<std::vector<QueueEntry>> slots_;  // kLevels × kSlots
  std::array<std::uint64_t, kLevels * kWordsPerLevel> occupied_{};
};

}  // namespace ph::sim
