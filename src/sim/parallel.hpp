// ShardedKernel — the parallel discrete-event kernel.
//
// The single-threaded Simulator executes one global worklist; city-scale
// radio worlds (50k–100k devices) need the world partitioned across cores.
// A ShardedKernel owns S independent Simulators ("shards"), each with its
// own timer wheel, live set and event-id sequence, and advances them in
// lockstep *windows* of `lookahead` virtual microseconds — the classic
// conservative-lookahead scheme (Chandy–Misra–Bryant with a global
// barrier): because every cross-shard interaction in the hosted workload
// carries at least `lookahead` of latency (the radio's base propagation
// delay), events executed inside a window can only affect *other* shards
// at or after the next window boundary, so shards never need to peek at
// each other mid-window.
//
// One window:
//
//   phase A (parallel)  every shard runs its own queue up to the window
//                       horizon; cross-shard sends buffer into per-
//                       (src,dst) mailboxes — single-writer, no locks
//   phase B (parallel)  every destination shard drains its S inboxes,
//                       sorts the union by (when, src shard, send seq)
//                       and schedules the entries locally
//   barrier (serial)    the registered hook runs — world maintenance
//                       (position snapshots, shard migration, metric
//                       publication) that needs a global view
//
// Determinism is the hard contract: thread count only changes *which OS
// thread* runs a shard's phase, never the order of events inside a shard
// (each shard is a sequential Simulator) nor the merge order at barriers
// (the (when, src, seq) sort is total and thread-independent). Same seed
// and same shard count ⇒ byte-identical metrics/series/trace dumps at
// --threads=1, 2 or 8 — the property ph_chaos_determinism cross-compares
// and the parallel lockstep test asserts wholesale. Shard count, by
// contrast, is part of the world definition (it fixes RNG stream
// ownership and merge keys), so vary threads freely but keep shards
// fixed when comparing runs.
//
// Worker pool: T-1 persistent threads plus the caller; shards are claimed
// from an atomic cursor, so a straggler shard never idles the rest of the
// pool (Katana-style work distribution, minus stealing — shard counts are
// small). With threads == 1 no threads are spawned and every phase runs
// inline on the caller, which is also the reference ordering the
// lockstep test compares against.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ph::sim {

struct ParallelConfig {
  /// Number of shards — the determinism domain. Fixed per world; two runs
  /// are comparable iff their shard counts match.
  unsigned shards = 8;
  /// Worker threads executing shard phases. Any value >= 1 produces
  /// byte-identical results; values above `shards` are clamped.
  unsigned threads = 1;
  /// Conservative-lookahead window in virtual time. Must be a lower bound
  /// on every cross-shard event latency the workload generates (the radio
  /// base latency, for the sharded world). post() clamps violations to
  /// the next window boundary and counts them.
  Duration lookahead = milliseconds(30);
  /// Mode 2 sampling profiler: worker threads register themselves with it
  /// on startup (as "worker-<n>") and unregister on shutdown, so folded
  /// profiles show per-worker window/merge/idle splits. Must outlive the
  /// kernel. Optional; wall-clock only — never part of determinism.
  obs::prof::WallProfiler* sampler = nullptr;
};

class ShardedKernel {
 public:
  /// Per-shard bookkeeping. `executed`, `cross_sent`, `cross_received`,
  /// `cross_clamped` and `cancelled_live` are deterministic (safe to dump
  /// and byte-compare); `stall_wall_us` is wall-clock barrier-wait time
  /// and must stay out of deterministic dumps.
  struct ShardStats {
    std::uint64_t executed = 0;
    std::uint64_t cross_sent = 0;
    std::uint64_t cross_received = 0;
    std::uint64_t cross_clamped = 0;
    std::uint64_t cancelled_live = 0;
    std::uint64_t stall_wall_us = 0;
  };

  explicit ShardedKernel(ParallelConfig config);
  ~ShardedKernel();
  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;

  unsigned shards() const noexcept { return config_.shards; }
  unsigned threads() const noexcept { return config_.threads; }
  Duration lookahead() const noexcept { return config_.lookahead; }

  /// Committed global time: every shard has executed all its events
  /// strictly before this. Advances at window barriers.
  Time window_start() const noexcept { return window_start_; }

  /// Shard-local Simulator. schedule/schedule_at/cancel on it are legal
  /// (a) before run_until, (b) from an event executing on that shard, and
  /// (c) from the barrier hook — never from another shard's events.
  Simulator& shard(unsigned s) { return *sims_[s]; }
  const Simulator& shard(unsigned s) const { return *sims_[s]; }

  /// Cross-shard delivery: schedules `fn` on `dst` at `when`. Legal only
  /// from an event executing on shard `src` during a window (the barrier
  /// hook schedules directly via shard() instead). `when` earlier than
  /// the next window boundary violates the conservative-lookahead
  /// contract; such posts are clamped to the boundary and counted in
  /// `cross_clamped` (deterministically — the clamp depends only on
  /// virtual times).
  void post(unsigned src, unsigned dst, Time when, EventFn fn);

  /// Advances every shard to `until` in lookahead windows. Events at
  /// exactly `until` execute, matching Simulator::run_until. Do NOT hold
  /// an obs::prof::TagScope across this call: the pending tag is thread-
  /// local, so it would reach only the shards the calling thread happens
  /// to run — a determinism leak. TagScopes *inside* events are fine
  /// (an event always executes on whichever thread runs its shard).
  void run_until(Time until);
  void run_for(Duration d) { run_until(window_start_ + d); }

  /// Runs `hook(window_start)` single-threaded after every window's merge
  /// phase. The hook may touch any shard's state (the pool is quiescent)
  /// and may call for_each_shard for parallel world maintenance.
  void set_barrier_hook(std::function<void(Time)> hook) {
    hook_ = std::move(hook);
  }

  /// Runs `fn(shard)` for every shard on the worker pool and waits. Legal
  /// from the barrier hook or outside run_until — not from events. The
  /// per-shard work must only touch state owned by (or partitioned to)
  /// that shard.
  void for_each_shard(const std::function<void(unsigned)>& fn) {
    run_parallel(fn, /*stamp_finish=*/false);
  }

  /// Attaches one obs::prof::EventProfiler per shard (Mode 1: per-center
  /// dispatch counts, deterministic; wall costing too when `wall`). Call
  /// before the first run_until. The profilers are kernel-owned; drain
  /// them single-threaded at barriers via shard_profiler().
  void enable_profiling(bool wall = false);
  /// Shard s's profiler, nullptr unless enable_profiling ran. Reading or
  /// publishing from it follows the shard() access rules.
  obs::prof::EventProfiler* shard_profiler(unsigned s) {
    return profilers_.empty() ? nullptr : profilers_[s].get();
  }

  ShardStats shard_stats(unsigned s) const;
  /// Windows completed (barrier count).
  std::uint64_t windows_run() const noexcept { return windows_; }
  /// Events executed, summed over shards.
  std::uint64_t events_executed() const;
  /// Cancelled-but-stored entries summed over shards — the per-shard-
  /// summed `sim.queue.cancelled_live` reading (a single global gauge
  /// would race under shards; each shard's queue keeps its own count and
  /// readers sum at barriers).
  std::size_t cancelled_live_total() const;

 private:
  struct MailItem {
    Time when = 0;
    std::uint64_t seq = 0;
    std::uint8_t tag = 0;  // cost center captured on the source shard
    EventFn fn;
  };
  struct MergeItem {
    Time when = 0;
    unsigned src = 0;
    std::uint64_t seq = 0;
    std::uint8_t tag = 0;
    EventFn fn;
  };
  /// Cross-pair counters a single shard owns exclusively during a phase;
  /// padded so two shards' hot counters never share a cache line.
  struct alignas(64) ShardLocal {
    std::uint64_t cross_sent = 0;
    std::uint64_t cross_received = 0;
    std::uint64_t cross_clamped = 0;
    std::uint64_t post_seq = 0;
    std::vector<MergeItem> merge_scratch;
    std::chrono::steady_clock::time_point finished{};
  };

  void run_parallel(const std::function<void(unsigned)>& fn,
                    bool stamp_finish);
  void claim_loop(const std::function<void(unsigned)>& fn, std::uint32_t gen,
                  bool stamp_finish);
  void worker_loop(unsigned index);
  void merge_into(unsigned dst, Time horizon);

  ParallelConfig config_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<obs::prof::EventProfiler>> profilers_;
  std::vector<std::vector<MailItem>> mail_;  // [src * shards + dst]
  std::vector<ShardLocal> locals_;
  std::vector<std::uint64_t> stall_us_;
  Time window_start_ = 0;
  Time horizon_ = 0;  // current window's end; post() clamps against it
  std::uint64_t windows_ = 0;
  std::function<void(Time)> hook_;

  // Pool state. `generation_`/`pending_`/`job_` are guarded by mu_; shard
  // claiming runs lock-free off cursor_, which packs (generation << 32 |
  // next shard) into one atomic so a claim atomically proves the phase it
  // claims for is still current. A worker that wakes late for phase G
  // after the caller already finished G alone would otherwise hold a
  // dangling pointer to G's (stack-temporary) job and steal shards from
  // phase G+1's reset cursor — the CAS on the packed word makes such a
  // stale claim fail instead (ThreadSanitizer caught the unpacked
  // version).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  bool job_stamps_finish_ = false;
  std::atomic<std::uint64_t> cursor_{0};
  unsigned pending_ = 0;
  std::uint32_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace ph::sim
