// Capped exponential backoff with deterministic jitter.
//
// The retry policy shared by the daemon's service queries/pings and the
// session resume sweeps. Pure arithmetic over an injected Rng: the same
// seed replays the same retry schedule, which is what keeps fault-plane
// runs byte-identical (ISSUE 2's determinism guarantee).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ph::sim {

struct Backoff {
  /// Delay before the first retry; attempt n waits base * multiplier^n.
  Duration base = seconds(1);
  double multiplier = 2.0;
  /// Upper bound on the un-jittered delay.
  Duration cap = seconds(8);
  /// Fraction of the delay drawn uniformly as ±jitter (0 disables; the
  /// draw still does NOT happen at 0 so RNG streams stay comparable).
  double jitter = 0.1;

  /// Delay before retry number `attempt` (0-based), jittered via `rng`.
  Duration delay(int attempt, Rng& rng) const {
    double scaled = static_cast<double>(base);
    for (int i = 0; i < attempt; ++i) {
      scaled *= multiplier;
      if (scaled >= static_cast<double>(cap)) break;
    }
    scaled = std::min(scaled, static_cast<double>(cap));
    if (jitter > 0.0) {
      scaled *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    }
    const auto out = static_cast<std::uint64_t>(scaled);
    return out == 0 ? Duration{1} : Duration{out};
  }
};

}  // namespace ph::sim
