#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace ph::sim {

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_seq_++;
  heap_.push_back(Entry{when, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;
  maybe_compact();
  return true;
}

bool Simulator::pending(EventId id) const { return live_.contains(id); }

TaskId Simulator::schedule_periodic(Duration interval,
                                    std::function<void()> fn) {
  const TaskId id = next_task_++;
  Periodic& task = periodic_[id];
  task.interval = interval;
  task.fn = std::move(fn);
  task.armed = schedule(interval, [this, id] { run_periodic(id); });
  return id;
}

bool Simulator::cancel_periodic(TaskId id) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return false;
  cancel(it->second.armed);
  periodic_.erase(it);
  return true;
}

void Simulator::run_periodic(TaskId id) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;  // cancelled after this occurrence fired
  it->second.fn();
  // The callback may have cancelled its own task (or scheduled others that
  // did); re-find before re-arming.
  it = periodic_.find(id);
  if (it == periodic_.end()) return;
  it->second.armed = schedule(it->second.interval, [this, id] {
    run_periodic(id);
  });
}

bool Simulator::settle_top() {
  while (!heap_.empty()) {
    if (live_.contains(heap_.front().id)) return true;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();  // stale entry from a lazy cancel
  }
  return false;
}

void Simulator::maybe_compact() {
  if (heap_.size() < 64 || heap_.size() < 4 * live_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) { return !live_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::run_until(Time until) {
  while (settle_top()) {
    if (heap_.front().when > until) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    live_.erase(entry.id);
    now_ = entry.when;
    ++executed_;
    entry.fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (settle_top()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    live_.erase(entry.id);
    now_ = entry.when;
    ++executed_;
    entry.fn();
  }
}

}  // namespace ph::sim
