#include "sim/simulator.hpp"

#include <utility>

namespace ph::sim {

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  const Key key{when, seq};
  queue_.emplace(key, std::move(fn));
  index_.emplace(seq, key);
  return seq;
}

bool Simulator::cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  queue_.erase(it->second);
  index_.erase(it);
  return true;
}

bool Simulator::pending(EventId id) const { return index_.contains(id); }

void Simulator::run_until(Time until) {
  while (!queue_.empty()) {
    auto it = queue_.begin();
    if (it->first.first > until) break;
    now_ = it->first.first;
    auto fn = std::move(it->second);
    index_.erase(it->first.second);
    queue_.erase(it);
    ++executed_;
    fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    auto it = queue_.begin();
    now_ = it->first.first;
    auto fn = std::move(it->second);
    index_.erase(it->first.second);
    queue_.erase(it);
    ++executed_;
    fn();
  }
}

}  // namespace ph::sim
