#include "sim/simulator.hpp"

#include <limits>
#include <utility>

namespace ph::sim {

Simulator::Simulator(QueueImpl impl) : impl_(impl) {
  if (impl_ == QueueImpl::timer_wheel) {
    queue_ = std::make_unique<TimerWheelQueue>(live_);
  } else {
    queue_ = std::make_unique<BinaryHeapQueue>(live_);
  }
}

EventId Simulator::schedule(Duration delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time when, EventFn fn) {
  return schedule_at_tagged(when, obs::prof::effective_tag(current_tag_),
                            std::move(fn));
}

EventId Simulator::schedule_at_tagged(Time when, std::uint8_t tag,
                                      EventFn fn) {
  if (when < now_) when = now_;
  const EventId id = next_seq_++;
  queue_->push(when, id, std::move(fn), tag);
  live_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (!live_.erase(id)) return false;
  queue_->note_cancelled();
  return true;
}

TaskId Simulator::schedule_periodic(Duration interval, EventFn fn) {
  const TaskId id = next_task_++;
  Periodic& task = periodic_[id];
  task.interval = interval;
  task.fn = std::move(fn);
  task.armed = schedule(interval, [this, id] { run_periodic(id); });
  return id;
}

bool Simulator::cancel_periodic(TaskId id) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return false;
  cancel(it->second.armed);
  periodic_.erase(it);
  return true;
}

void Simulator::run_periodic(TaskId id) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;  // cancelled after this occurrence fired
  it->second.fn();
  // The callback may have cancelled its own task (or scheduled others that
  // did); re-find before re-arming.
  it = periodic_.find(id);
  if (it == periodic_.end()) return;
  it->second.armed = schedule(it->second.interval, [this, id] {
    run_periodic(id);
  });
}

void Simulator::run_until(Time until) {
  QueueEntry entry;
  while (queue_->pop_next(until, entry)) {
    live_.erase(entry.id);
    now_ = entry.when;
    ++executed_;
    dispatch(entry);
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  QueueEntry entry;
  while (queue_->pop_next(std::numeric_limits<Time>::max(), entry)) {
    live_.erase(entry.id);
    now_ = entry.when;
    ++executed_;
    dispatch(entry);
  }
}

}  // namespace ph::sim
