// The discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of events. Code
// running inside an event callback may schedule further events; the kernel
// processes them in timestamp order (FIFO among equal timestamps). Events
// can be cancelled through the handle returned by schedule(), which is how
// periodic daemon timers and connection watchdogs are torn down.
//
// The queue is a binary min-heap ordered by (time, insertion sequence)
// with lazy cancellation: cancel() only drops the id from the live set,
// and the stale heap entry is discarded when it reaches the top. This
// makes schedule/cancel O(log n) with much better constants than the
// previous std::map implementation (no per-event node allocation, no
// rebalancing). When stale entries outnumber live ones 4:1 the heap is
// compacted so cancel-heavy workloads don't accumulate dead closures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ph::sim {

/// Identifies a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

/// Identifies a periodic task (schedule_periodic); 0 is never valid.
using TaskId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` after the current virtual time.
  /// Returns a handle usable with cancel().
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules at an absolute virtual time (clamped to now).
  EventId schedule_at(Time when, std::function<void()> fn);

  /// Removes a pending event. Returns false if it already ran or was
  /// cancelled; cancelling an invalid id is a harmless no-op.
  bool cancel(EventId id);

  /// Runs `fn` every `interval` of virtual time, first at now + interval,
  /// until cancel_periodic(). The telemetry scraper (obs::Sampler) and
  /// other fixed-cadence housekeeping hang off this instead of hand-rolled
  /// rescheduling closures. `fn` may cancel its own task. Note run_all()
  /// never drains a live periodic task — soak drivers use run_until.
  TaskId schedule_periodic(Duration interval, std::function<void()> fn);

  /// Stops a periodic task. Returns false if the id is unknown or already
  /// cancelled.
  bool cancel_periodic(TaskId id);

  /// True if the periodic task is still armed.
  bool periodic_pending(TaskId id) const { return periodic_.contains(id); }

  /// True if the event is still pending.
  bool pending(EventId id) const;

  /// Runs events until the queue drains or virtual time would pass `until`.
  /// The clock is left at min(until, time of last event run); events at
  /// exactly `until` are executed.
  void run_until(Time until);

  /// Advances by a relative amount.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until the queue is completely empty. Use in tests only — an
  /// active periodic timer makes this never return, so prefer run_until.
  void run_all();

  /// Number of events waiting in the queue (cancelled events excluded).
  std::size_t queue_size() const noexcept { return live_.size(); }

  /// Total events executed since construction (telemetry for benches).
  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct Entry {
    Time when;
    EventId id;  // == insertion sequence, so FIFO at equal timestamps
    std::function<void()> fn;
  };
  // std::push_heap builds a max-heap, so "greater" puts the earliest
  // (when, id) on top.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  struct Periodic {
    Duration interval = 0;
    std::function<void()> fn;
    EventId armed = 0;  // the currently scheduled occurrence
  };

  /// Runs one occurrence of a periodic task and re-arms it.
  void run_periodic(TaskId id);

  /// Pops heap entries until the top is live; true if one exists.
  bool settle_top();
  /// Rebuilds the heap without cancelled entries once they dominate.
  void maybe_compact();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  std::unordered_set<EventId> live_;
  TaskId next_task_ = 1;
  std::map<TaskId, Periodic> periodic_;
};

}  // namespace ph::sim
