// The discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a queue of events. Code running
// inside an event callback may schedule further events; the kernel
// processes them in timestamp order (FIFO among equal timestamps). Events
// can be cancelled through the handle returned by schedule(), which is how
// periodic daemon timers and connection watchdogs are torn down.
//
// The queue is a hierarchical timer wheel (see event_queue.hpp): O(1)
// bucket insertion for the dominant short-horizon periodic load, an
// overflow heap for far-future timers, and a small (time, sequence)
// ordered due-heap that preserves the exact FIFO tie-break order of the
// previous binary heap — same seed, byte-identical run. Callbacks are
// stored in a small-buffer-optimized EventFn directly inside the queue
// entry, so steady-state schedule() performs zero heap allocations.
// Cancellation stays lazy: cancel() drops the id from the live set, the
// stale entry is discarded when reached, and entries are compacted once
// dead ones dominate (mirroring the Medium's dead-link policy).
//
// The previous binary-heap queue remains available behind the QueueImpl
// constructor knob as the reference implementation for the lockstep
// property test and the wheel-vs-heap microbenchmarks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "obs/prof.hpp"
#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ph::sim {

/// Identifies a periodic task (schedule_periodic); 0 is never valid.
using TaskId = std::uint64_t;

class Simulator {
 public:
  enum class QueueImpl { timer_wheel, binary_heap };

  explicit Simulator(QueueImpl impl = QueueImpl::timer_wheel);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` after the current virtual time.
  /// Returns a handle usable with cancel(). The event carries a cost-
  /// center tag: the active obs::prof::TagScope's if one is set, else the
  /// tag of the event currently executing (causal inheritance), else 0.
  EventId schedule(Duration delay, EventFn fn);

  /// Schedules at an absolute virtual time (clamped to now).
  EventId schedule_at(Time when, EventFn fn);

  /// Tagged variants with an explicit cost center — for relays that must
  /// preserve a tag across a thread/shard boundary where neither the
  /// TagScope TLS nor the executing event's tag is the right context
  /// (ShardedKernel's cross-shard merge).
  EventId schedule_tagged(Duration delay, std::uint8_t tag, EventFn fn) {
    return schedule_at_tagged(now_ + delay, tag, std::move(fn));
  }
  EventId schedule_at_tagged(Time when, std::uint8_t tag, EventFn fn);

  /// Cost center of the event currently executing (0 between events).
  std::uint8_t current_tag() const noexcept { return current_tag_; }

  /// Attaches an obs::prof::EventProfiler: every dispatch is counted per
  /// center, and timed when the profiler's wall plane is enabled. The
  /// profiler must outlive the simulator (or be detached with nullptr).
  void set_profiler(obs::prof::EventProfiler* profiler) noexcept {
    prof_ = profiler;
  }
  obs::prof::EventProfiler* profiler() const noexcept { return prof_; }

  /// Removes a pending event. Returns false if it already ran or was
  /// cancelled; cancelling an invalid id is a harmless no-op.
  bool cancel(EventId id);

  /// Runs `fn` every `interval` of virtual time, first at now + interval,
  /// until cancel_periodic(). The telemetry scraper (obs::Sampler) and
  /// other fixed-cadence housekeeping hang off this instead of hand-rolled
  /// rescheduling closures. `fn` may cancel its own task. Note run_all()
  /// never drains a live periodic task — soak drivers use run_until.
  TaskId schedule_periodic(Duration interval, EventFn fn);

  /// Stops a periodic task. Returns false if the id is unknown or already
  /// cancelled.
  bool cancel_periodic(TaskId id);

  /// True if the periodic task is still armed.
  bool periodic_pending(TaskId id) const { return periodic_.contains(id); }

  /// True if the event is still pending.
  bool pending(EventId id) const { return live_.contains(id); }

  /// Runs events until the queue drains or virtual time would pass `until`.
  /// The clock is left at min(until, time of last event run); events at
  /// exactly `until` are executed.
  void run_until(Time until);

  /// Advances by a relative amount.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until the queue is completely empty. Use in tests only — an
  /// active periodic timer makes this never return, so prefer run_until.
  void run_all();

  /// Number of events waiting in the queue (cancelled events excluded).
  std::size_t queue_size() const noexcept { return live_.size(); }

  /// Cancelled entries still occupying queue storage (lazy cancellation
  /// garbage awaiting collection) — the `sim.queue.cancelled_live` gauge.
  std::size_t cancelled_pending() const noexcept { return queue_->dead(); }
  /// Entries held by the queue (live + not-yet-collected cancelled).
  std::size_t stored_pending() const noexcept { return queue_->stored(); }

  /// Total events executed since construction (telemetry for benches).
  std::uint64_t events_executed() const noexcept { return executed_; }

  QueueImpl queue_impl() const noexcept { return impl_; }
  /// "timer_wheel" or "binary_heap" (bench labels).
  const char* queue_name() const noexcept { return queue_->name(); }

 private:
  struct Periodic {
    Duration interval = 0;
    EventFn fn;
    EventId armed = 0;  // the currently scheduled occurrence
  };

  /// Runs one occurrence of a periodic task and re-arms it.
  void run_periodic(TaskId id);

  /// Executes one popped entry under the attribution hook: sets
  /// current_tag_ for causal inheritance, counts the dispatch, and (wall
  /// plane) times it inside a sampler-visible Scope.
  void dispatch(QueueEntry& entry) {
    current_tag_ = entry.tag;
    obs::prof::EventProfiler* const prof = prof_;
    if (prof == nullptr) {
      entry.fn();
    } else {
      prof->count(entry.tag);
      if (!prof->wall_enabled()) {
        entry.fn();
      } else {
        const std::uint64_t t0 = prof->now_us();
        {
          obs::prof::Scope span(entry.tag);
          entry.fn();
        }
        prof->observe_wall(entry.tag, prof->now_us() - t0);
      }
    }
    current_tag_ = 0;
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  QueueImpl impl_;
  FlatIdSet live_;
  std::unique_ptr<EventQueue> queue_;
  TaskId next_task_ = 1;
  std::map<TaskId, Periodic> periodic_;
  std::uint8_t current_tag_ = 0;
  obs::prof::EventProfiler* prof_ = nullptr;
};

}  // namespace ph::sim
