#include "sim/mobility.hpp"

#include <algorithm>
#include <cassert>

namespace ph::sim {

WaypointMobility::WaypointMobility(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  assert(!waypoints_.empty());
  assert(std::is_sorted(waypoints_.begin(), waypoints_.end(),
                        [](const Waypoint& a, const Waypoint& b) { return a.at < b.at; }));
}

Vec2 WaypointMobility::position_at(Time t) {
  if (t <= waypoints_.front().at) return waypoints_.front().pos;
  if (t >= waypoints_.back().at) return waypoints_.back().pos;
  // Find the segment [prev, next] containing t: try the hinted segment and
  // its successor first (monotonic sampling), fall back to binary search.
  auto next = waypoints_.begin() + 1;
  if (segment_hint_ + 1 < waypoints_.size() &&
      waypoints_[segment_hint_].at < t) {
    if (t < waypoints_[segment_hint_ + 1].at) {
      next = waypoints_.begin() + static_cast<std::ptrdiff_t>(segment_hint_) + 1;
    } else if (segment_hint_ + 2 < waypoints_.size() &&
               waypoints_[segment_hint_ + 1].at < t &&
               t < waypoints_[segment_hint_ + 2].at) {
      next = waypoints_.begin() + static_cast<std::ptrdiff_t>(segment_hint_) + 2;
    } else {
      next = std::upper_bound(
          waypoints_.begin(), waypoints_.end(), t,
          [](Time value, const Waypoint& w) { return value < w.at; });
    }
  } else {
    next = std::upper_bound(
        waypoints_.begin(), waypoints_.end(), t,
        [](Time value, const Waypoint& w) { return value < w.at; });
  }
  auto prev = next - 1;
  segment_hint_ = static_cast<std::size_t>(prev - waypoints_.begin());
  const double span = static_cast<double>(next->at - prev->at);
  const double frac = span == 0.0 ? 0.0 : static_cast<double>(t - prev->at) / span;
  return prev->pos + (next->pos - prev->pos) * frac;
}

RandomWaypoint::RandomWaypoint(Config config, Rng rng)
    : config_(config), rng_(rng) {
  current_ = {rng_.uniform(config_.area_min.x, config_.area_max.x),
              rng_.uniform(config_.area_min.y, config_.area_max.y)};
}

void RandomWaypoint::extend_to(Time t) {
  while (covered_until_ <= t) {
    const Vec2 from = legs_.empty() ? current_ : legs_.back().to;
    const Time start = covered_until_ + config_.pause;
    const Vec2 to{rng_.uniform(config_.area_min.x, config_.area_max.x),
                  rng_.uniform(config_.area_min.y, config_.area_max.y)};
    const double speed = rng_.uniform(config_.speed_min_mps, config_.speed_max_mps);
    const double dist = distance(from, to);
    const Duration travel = seconds(speed > 0 ? dist / speed : 0.0);
    legs_.push_back(Leg{start, start + travel, from, to});
    covered_until_ = start + travel;
  }
}

Vec2 RandomWaypoint::position_at(Time t) {
  extend_to(t);
  // Legs are time-ordered; find the one covering t. The hinted leg (or a
  // near successor) almost always matches because sampling tracks the
  // advancing virtual clock; otherwise fall back to binary search.
  auto it = legs_.begin();
  bool hinted = false;
  if (leg_hint_ < legs_.size() && legs_[leg_hint_].depart <= t) {
    std::size_t h = leg_hint_;
    while (h + 1 < legs_.size() && legs_[h + 1].depart <= t) {
      ++h;
      if (h - leg_hint_ > 8) break;  // cold restart: binary search instead
    }
    if (h + 1 >= legs_.size() || t < legs_[h + 1].depart) {
      it = legs_.begin() + static_cast<std::ptrdiff_t>(h) + 1;
      hinted = true;
    }
  }
  if (!hinted) {
    it = std::upper_bound(legs_.begin(), legs_.end(), t,
                          [](Time value, const Leg& leg) { return value < leg.depart; });
  }
  if (it == legs_.begin()) return current_;
  const Leg& leg = *(it - 1);
  leg_hint_ = static_cast<std::size_t>(it - legs_.begin()) - 1;
  if (t >= leg.arrive) return leg.to;
  const double span = static_cast<double>(leg.arrive - leg.depart);
  const double frac = span == 0.0 ? 1.0 : static_cast<double>(t - leg.depart) / span;
  return leg.from + (leg.to - leg.from) * frac;
}

}  // namespace ph::sim
