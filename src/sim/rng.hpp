// Deterministic random number generation for simulations.
//
// Every scenario owns one Rng seeded explicitly; re-running a scenario with
// the same seed reproduces every discovery jitter, packet loss and waypoint.
#pragma once

#include <cstdint>
#include <random>

namespace ph::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Normally distributed value clamped to be non-negative.
  double normal_nonneg(double mean, double stddev) {
    const double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < 0.0 ? 0.0 : v;
  }

  /// Forks an independent stream (for per-node RNGs).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Compact splitmix64 stream — 8 bytes of state against mt19937_64's ~2.5 kB.
/// City-scale worlds keep one (or two) streams per device, so at 100k devices
/// the engine choice is the difference between megabytes and gigabytes.
/// Statistical quality is ample for jitter/loss draws; determinism is the
/// same contract as Rng: one seed, one reproducible sequence.
class SmallRng {
 public:
  explicit SmallRng(std::uint64_t seed = 0) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire multiply-shift; the slight modulo bias at 64 bits is far below
    // anything a simulation statistic could resolve.
    using u128 = unsigned __int128;
    return static_cast<std::uint64_t>(
        (static_cast<u128>(next_u64()) * static_cast<u128>(n)) >> 64);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

/// One splitmix64 draw as a pure function — for stateless "hash of (entity,
/// epoch)" decisions (e.g. outage waves) that must not consume any stream.
inline std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace ph::sim
