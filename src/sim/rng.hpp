// Deterministic random number generation for simulations.
//
// Every scenario owns one Rng seeded explicitly; re-running a scenario with
// the same seed reproduces every discovery jitter, packet loss and waypoint.
#pragma once

#include <cstdint>
#include <random>

namespace ph::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Normally distributed value clamped to be non-negative.
  double normal_nonneg(double mean, double stddev) {
    const double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < 0.0 ? 0.0 : v;
  }

  /// Forks an independent stream (for per-node RNGs).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ph::sim
