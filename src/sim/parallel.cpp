#include "sim/parallel.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace ph::sim {

ShardedKernel::ShardedKernel(ParallelConfig config) : config_(config) {
  PH_CHECK(config_.shards >= 1);
  PH_CHECK(config_.lookahead >= 1);
  if (config_.threads < 1) config_.threads = 1;
  if (config_.threads > config_.shards) config_.threads = config_.shards;
  sims_.reserve(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  mail_.resize(static_cast<std::size_t>(config_.shards) * config_.shards);
  locals_.resize(config_.shards);
  stall_us_.resize(config_.shards, 0);
  // T-1 persistent workers; the caller is the T-th. With threads == 1 the
  // pool is empty and run_parallel degenerates to an in-order loop.
  for (unsigned w = 0; w + 1 < config_.threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardedKernel::~ShardedKernel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedKernel::enable_profiling(bool wall) {
  if (profilers_.empty()) {
    profilers_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
      profilers_.push_back(std::make_unique<obs::prof::EventProfiler>());
      sims_[s]->set_profiler(profilers_.back().get());
    }
  }
  for (auto& profiler : profilers_) profiler->enable_wall(wall);
}

void ShardedKernel::post(unsigned src, unsigned dst, Time when, EventFn fn) {
  PH_CHECK(src < config_.shards && dst < config_.shards);
  ShardLocal& local = locals_[src];
  if (when < horizon_) {
    // Conservative-lookahead violation (or a forwarded event whose fire
    // time already passed): deliver at the earliest causally safe instant.
    when = horizon_;
    ++local.cross_clamped;
  }
  ++local.cross_sent;
  // The cost center crosses with the event: the sender's context (TagScope
  // or the executing event's tag) would be gone by merge time.
  const std::uint8_t tag =
      obs::prof::effective_tag(sims_[src]->current_tag());
  mail_[static_cast<std::size_t>(src) * config_.shards + dst].push_back(
      MailItem{when, local.post_seq++, tag, std::move(fn)});
}

void ShardedKernel::merge_into(unsigned dst, Time horizon) {
  ShardLocal& local = locals_[dst];
  std::vector<MergeItem>& scratch = local.merge_scratch;
  scratch.clear();
  for (unsigned src = 0; src < config_.shards; ++src) {
    std::vector<MailItem>& box =
        mail_[static_cast<std::size_t>(src) * config_.shards + dst];
    for (MailItem& item : box) {
      scratch.push_back(MergeItem{item.when, src, item.seq, item.tag,
                                  std::move(item.fn)});
    }
    box.clear();
  }
  // Total, thread-independent order: virtual time, then source shard,
  // then the source's send sequence. This fixes the destination-shard
  // event ids (and thus FIFO tie-breaks) regardless of which thread ran
  // which source when.
  std::sort(scratch.begin(), scratch.end(),
            [](const MergeItem& a, const MergeItem& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (MergeItem& item : scratch) {
    PH_CHECK(item.when >= horizon);  // post() clamped; anything else is a bug
    ++local.cross_received;
    sims_[dst]->schedule_at_tagged(item.when, item.tag, std::move(item.fn));
  }
  scratch.clear();
}

void ShardedKernel::claim_loop(const std::function<void(unsigned)>& fn,
                               std::uint32_t gen, bool stamp_finish) {
  for (;;) {
    std::uint64_t cur = cursor_.load(std::memory_order_acquire);
    for (;;) {
      if (static_cast<std::uint32_t>(cur >> 32) != gen) return;  // stale
      if (static_cast<unsigned>(cur & 0xffffffffu) >= config_.shards) return;
      if (cursor_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        break;
      }
    }
    // The claim proved `gen` was current at CAS time; the caller cannot
    // leave run_parallel (and destroy `fn`) until this shard's pending
    // decrement below, so invoking fn here is safe.
    const unsigned s = static_cast<unsigned>(cur & 0xffffffffu);
    fn(s);
    if (stamp_finish) locals_[s].finished = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ShardedKernel::run_parallel(const std::function<void(unsigned)>& fn,
                                 bool stamp_finish) {
  if (workers_.empty()) {
    for (unsigned s = 0; s < config_.shards; ++s) {
      fn(s);
      if (stamp_finish) locals_[s].finished = std::chrono::steady_clock::now();
    }
    return;
  }
  std::uint32_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = ++generation_;
    job_ = &fn;
    job_stamps_finish_ = stamp_finish;
    pending_ = config_.shards;
    cursor_.store(static_cast<std::uint64_t>(gen) << 32,
                  std::memory_order_release);
  }
  cv_start_.notify_all();
  claim_loop(fn, gen, stamp_finish);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ShardedKernel::worker_loop(unsigned index) {
  if (config_.sampler != nullptr) {
    config_.sampler->register_thread("worker-" + std::to_string(index + 1));
  }
  std::uint32_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    std::uint32_t gen = 0;
    bool stamp = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) break;
      seen = generation_;
      gen = generation_;
      job = job_;
      stamp = job_stamps_finish_;
    }
    if (job != nullptr) claim_loop(*job, gen, stamp);
  }
  // Fold this thread's samples into the retired aggregate before the
  // span stack (thread-local) dies with us.
  if (config_.sampler != nullptr) config_.sampler->unregister_thread();
}

void ShardedKernel::run_until(Time until) {
  PH_CHECK(until >= window_start_);
  do {
    const Time horizon = std::min<Time>(window_start_ + config_.lookahead,
                                        until);
    // The final window runs events at exactly `until` (Simulator
    // semantics); interior windows are half-open [start, horizon) so a
    // cross event landing exactly on the horizon fires next window.
    const Time inclusive = horizon == until ? horizon : horizon - 1;
    horizon_ = horizon;
    run_parallel(
        [this, inclusive](unsigned s) {
          obs::prof::Scope span(obs::prof::Center::parallel_window);
          sims_[s]->run_until(inclusive);
        },
        /*stamp_finish=*/true);
    // Wall-clock lookahead stall: how long each shard sat at the barrier
    // waiting for the window's straggler. Telemetry only — never part of
    // deterministic dumps.
    std::chrono::steady_clock::time_point last{};
    for (unsigned s = 0; s < config_.shards; ++s) {
      last = std::max(last, locals_[s].finished);
    }
    for (unsigned s = 0; s < config_.shards; ++s) {
      stall_us_[s] += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              last - locals_[s].finished)
              .count());
    }
    run_parallel(
        [this, horizon](unsigned dst) {
          obs::prof::Scope span(obs::prof::Center::parallel_merge);
          merge_into(dst, horizon);
        },
        /*stamp_finish=*/false);
    window_start_ = horizon;
    ++windows_;
    if (hook_) {
      obs::prof::Scope span(obs::prof::Center::parallel_barrier);
      hook_(window_start_);
    }
  } while (window_start_ < until);
}

ShardedKernel::ShardStats ShardedKernel::shard_stats(unsigned s) const {
  PH_CHECK(s < config_.shards);
  ShardStats stats;
  stats.executed = sims_[s]->events_executed();
  stats.cross_sent = locals_[s].cross_sent;
  stats.cross_received = locals_[s].cross_received;
  stats.cross_clamped = locals_[s].cross_clamped;
  stats.cancelled_live = sims_[s]->cancelled_pending();
  stats.stall_wall_us = stall_us_[s];
  return stats;
}

std::uint64_t ShardedKernel::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->events_executed();
  return total;
}

std::size_t ShardedKernel::cancelled_live_total() const {
  std::size_t total = 0;
  for (const auto& sim : sims_) total += sim->cancelled_pending();
  return total;
}

}  // namespace ph::sim
