#include "sim/time.hpp"

#include <cstdio>

namespace ph::sim {

std::string format_duration(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(d));
  return buf;
}

}  // namespace ph::sim
