#include "net/medium.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "net/link_state.hpp"
#include "obs/prof.hpp"
#include "util/log.hpp"

namespace ph::net {

namespace {
constexpr int kMaxRetransmissions = 5;
}  // namespace

Medium::Medium(sim::Simulator& simulator, sim::Rng rng, MediumConfig config)
    : simulator_(simulator), rng_(rng), config_(config) {
  // NodeIds are dense from 1; slot 0 of every per-node array is a
  // placeholder so arrays index directly by id.
  node_names_.emplace_back();
  node_mobility_.emplace_back();
  adapter_lut_.emplace_back();
  open_link_counts_.emplace_back();
  pos_cache_at_.push_back(kPosNever);
  pos_cache_.emplace_back();
  c_datagrams_sent_ = &registry_.counter("net.medium.datagrams_sent");
  c_datagrams_lost_ = &registry_.counter("net.medium.datagrams_lost");
  c_link_messages_sent_ = &registry_.counter("net.medium.link_messages_sent");
  c_link_bytes_sent_ = &registry_.counter("net.medium.link_bytes_sent");
  c_retransmissions_ = &registry_.counter("net.medium.retransmissions");
  c_links_opened_ = &registry_.counter("net.medium.links_opened");
  c_links_broken_ = &registry_.counter("net.medium.links_broken");
  c_inquiries_ = &registry_.counter("net.medium.inquiries");
  c_links_compacted_ = &registry_.counter("net.medium.links_compacted");
  c_signal_evals_ = &registry_.counter("net.medium.signal_evals");
  c_spatial_queries_ = &registry_.counter("net.medium.spatial.queries");
  c_spatial_rebuilds_ = &registry_.counter("net.medium.spatial.rebuilds");
  c_spatial_cells_visited_ =
      &registry_.counter("net.medium.spatial.cells_visited");
  c_spatial_candidates_ = &registry_.counter("net.medium.spatial.candidates");
  c_spatial_pairs_pruned_ =
      &registry_.counter("net.medium.spatial.pairs_pruned");
  c_position_hits_ = &registry_.counter("net.medium.position_cache.hits");
  c_position_misses_ = &registry_.counter("net.medium.position_cache.misses");
  c_signal_memo_hits_ = &registry_.counter("net.medium.signal_cache.hits");
  h_transfer_us_ = &registry_.histogram("net.medium.transfer_us");
  // Capacity overflow in the journal must be visible in metric dumps.
  trace_.set_dropped_counter(&registry_.counter("obs.trace.dropped"));
  for (Technology tech : {Technology::bluetooth, Technology::wlan,
                          Technology::gprs}) {
    const std::string prefix =
        "net.tech." + std::string(to_string(tech));
    TechCounters& tc = tech_counters_[static_cast<std::size_t>(tech)];
    tc.datagram_bytes = &registry_.counter(prefix + ".datagram_bytes");
    tc.link_bytes = &registry_.counter(prefix + ".link_bytes");
    tc.messages = &registry_.counter(prefix + ".messages");
  }
}

Medium::~Medium() {
  // Links still open when the world tears down hold their handlers, and
  // handlers routinely capture Link handles that co-own the LinkState
  // (session handover guards, server-side keepalive holders). Release them
  // so those reference cycles cannot outlive the Medium.
  for (const auto& weak : links_) {
    if (auto state = weak.lock()) {
      state->rx_a = nullptr;
      state->rx_b = nullptr;
      state->brk_a = nullptr;
      state->brk_b = nullptr;
      // Scheduled close events surviving the world must not dereference a
      // dead Medium for link bookkeeping.
      state->medium = nullptr;
    }
  }
}

NodeId Medium::add_node(std::string name,
                        std::unique_ptr<sim::MobilityModel> mobility) {
  assert(mobility != nullptr);
  const NodeId id = next_node_++;
  node_names_.push_back(std::move(name));
  node_mobility_.push_back(std::move(mobility));
  adapter_lut_.emplace_back();
  open_link_counts_.emplace_back();
  pos_cache_at_.push_back(kPosNever);
  pos_cache_.emplace_back();
  return id;
}

void Medium::set_mobility(NodeId node,
                          std::unique_ptr<sim::MobilityModel> mobility) {
  assert(mobility != nullptr);
  node_mobility_.at(node) = std::move(mobility);
  // The node may now be somewhere else at this very timestamp: drop its
  // memo, force every technology's grid to re-place it, and invalidate
  // signals computed from the old position.
  pos_cache_at_[node] = kPosNever;
  for (TechAdapters& ta : tech_adapters_) ta.dirty = true;
  invalidate_signal_memo();
}

const std::string& Medium::node_name(NodeId node) const {
  if (node == kInvalidNode || node >= node_names_.size()) {
    throw std::out_of_range("unknown node id");
  }
  return node_names_[node];
}

std::map<std::uint64_t, std::string> Medium::trace_device_names() const {
  std::map<std::uint64_t, std::string> names;
  for (NodeId id = 1; id < node_names_.size(); ++id) {
    names[id] = node_names_[id];
  }
  return names;
}

sim::Vec2 Medium::position(NodeId node) const {
  const sim::Time now = simulator_.now();
  if (!config_.use_position_cache) {
    return node_mobility_.at(node)->position_at(now);
  }
  if (pos_cache_at_[node] == now) {
    c_position_hits_->inc();
    return pos_cache_[node];
  }
  const sim::Vec2 pos = node_mobility_.at(node)->position_at(now);
  pos_cache_at_[node] = now;
  pos_cache_[node] = pos;
  c_position_misses_->inc();
  return pos;
}

Medium::TechTraffic Medium::traffic(Technology tech) const {
  const TechCounters& tc = tech_counters_[static_cast<std::size_t>(tech)];
  TechTraffic out;
  out.datagram_bytes = tc.datagram_bytes->value();
  out.link_bytes = tc.link_bytes->value();
  out.messages = tc.messages->value();
  return out;
}

NodeId Medium::add_access_point(std::string name, sim::Vec2 position,
                                double range_m) {
  const NodeId id =
      add_node(std::move(name), std::make_unique<sim::StaticMobility>(position));
  access_points_.push_back(AccessPoint{id, range_m, true});
  invalidate_signal_memo();  // infra pairs may be reachable through it now
  return id;
}

void Medium::set_access_point_active(NodeId ap, bool active) {
  for (AccessPoint& entry : access_points_) {
    if (entry.node != ap) continue;
    entry.active = active;
    // Invalidate before the reachability sweep below — it must see the
    // cell's new state, not memoized pre-flip signals.
    invalidate_signal_memo();
    if (!active) {
      // The cell went dark: break every infrastructure link that no other
      // AP can carry, so applications learn immediately — losing
      // association is not a silent event.
      std::vector<std::shared_ptr<detail::LinkState>> affected;
      for (const auto& weak : links_) {
        auto state = weak.lock();
        if (!state || !state->open) continue;
        if (state->profile.infrastructure &&
            !reachable(state->a, state->b, state->profile)) {
          affected.push_back(std::move(state));
        }
      }
      for (auto& state : affected) break_link(state);
    }
    return;
  }
}

Adapter& Medium::add_adapter(NodeId node, TechProfile profile) {
  assert(node != kInvalidNode && node < node_names_.size());
  const Technology tech = profile.tech;
  const std::size_t ti = static_cast<std::size_t>(tech);
  const double range = profile.via_gateway ? 0.0 : profile.range_m;
  assert(adapter_lut_[node][ti] == nullptr &&
         "one adapter per (node, technology)");
  auto adapter = std::make_unique<Adapter>(*this, node, std::move(profile));
  Adapter& ref = *adapter;
  adapter_own_.push_back(std::move(adapter));
  adapter_lut_[node][ti] = &ref;
  TechAdapters& ta = tech_adapters_[ti];
  // Keep the per-technology arrays sorted by node id so the grid path and
  // the brute-force path evaluate candidates in the same order (matching
  // the old full-map scan); order is what keeps RNG consumption identical.
  const std::size_t at = static_cast<std::size_t>(
      std::lower_bound(ta.ids.begin(), ta.ids.end(), node) - ta.ids.begin());
  ta.ids.insert(ta.ids.begin() + static_cast<std::ptrdiff_t>(at), node);
  ta.list.insert(ta.list.begin() + static_cast<std::ptrdiff_t>(at), &ref);
  ta.powered.insert(ta.powered.begin() + static_cast<std::ptrdiff_t>(at), 1);
  // Mid-list insertion shifts the tail; refresh the per-adapter index the
  // powered mirror is keyed by (setup-time cost only — adapters never die).
  for (std::size_t i = at; i < ta.list.size(); ++i) {
    ta.list[i]->tech_index_ = i;
  }
  ta.max_range_m = std::max(ta.max_range_m, range);
  ta.dirty = true;
  // A pair involving this node may have memoized signal 0 ("no adapter")
  // at this very timestamp; the new radio changes that.
  invalidate_signal_memo();
  return ref;
}

Adapter* Medium::adapter(NodeId node, Technology tech) {
  if (node >= adapter_lut_.size()) return nullptr;
  return adapter_lut_[node][static_cast<std::size_t>(tech)];
}

const Adapter* Medium::adapter(NodeId node, Technology tech) const {
  if (node >= adapter_lut_.size()) return nullptr;
  return adapter_lut_[node][static_cast<std::size_t>(tech)];
}

void Medium::note_adapter_power(const Adapter& adapter, bool on) noexcept {
  TechAdapters& ta =
      tech_adapters_[static_cast<std::size_t>(adapter.technology())];
  ta.powered[adapter.tech_index_] = on ? 1 : 0;
}

bool Medium::reachable(NodeId a, NodeId b, const TechProfile& profile) const {
  return signal(a, b, profile) > 0.0;
}

namespace {
/// Quadratic falloff: 1 at 0 m, 0 at/beyond `range`.
double falloff(double distance_m, double range_m) {
  if (distance_m >= range_m) return 0.0;
  const double frac = distance_m / range_m;
  return 1.0 - frac * frac;
}
}  // namespace

double Medium::signal(NodeId a, NodeId b, const TechProfile& profile) const {
  if (a == b) return 0.0;
  if (!config_.use_signal_cache) {
    c_signal_evals_->inc();
    return signal_physics(a, b, profile);
  }
  const sim::Time now = simulator_.now();
  if (signal_memo_at_ != now || signal_memo_epoch_ != world_epoch_) {
    signal_memo_.clear();
    signal_memo_at_ = now;
    signal_memo_epoch_ = world_epoch_;
  }
  // signal() is exactly symmetric in (a, b): falloff takes hypot of
  // coordinate differences (sign-insensitive), the AP legs combine via
  // min, and fault attenuation multiplies per-node factors — all
  // bit-commutative. Normalizing the key to the unordered pair lets a
  // delivery-time recheck (src→dst) and the receiver's signal sample
  // (dst→src) inside the same timestamp share one evaluation.
  SignalKey key;
  key.pair = (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
             std::max(a, b);
  key.range_bits = std::bit_cast<std::uint64_t>(profile.range_m);
  key.flags = (static_cast<std::uint32_t>(profile.tech) << 2) |
              (profile.via_gateway ? 2u : 0u) |
              (profile.infrastructure ? 1u : 0u);
  auto it = signal_memo_.find(key);
  if (it != signal_memo_.end()) {
    c_signal_memo_hits_->inc();
    return it->second;
  }
  c_signal_evals_->inc();  // the pair-evaluation cost the benches compare
  const double value = signal_physics(a, b, profile);
  signal_memo_.emplace(key, value);
  return value;
}

double Medium::signal_physics(NodeId a, NodeId b,
                              const TechProfile& profile) const {
  const Adapter* aa = adapter(a, profile.tech);
  const Adapter* ab = adapter(b, profile.tech);
  if (aa == nullptr || ab == nullptr || !aa->powered() || !ab->powered()) return 0.0;
  if (profile.via_gateway) {
    // Cellular coverage is assumed ubiquitous, but a fault-plane signal
    // ramp (device descending into a basement) still attenuates it.
    return attenuated(1.0, a, b);
  }
  if (profile.infrastructure) {
    // Stations associate with their best access point; APs bridge over the
    // wired distribution system (thesis §2.4.2: "Inter-networking with
    // wired LAN is allowed in infrastructure mode"). The end-to-end signal
    // is the weaker of the two stations' own AP legs.
    const sim::Vec2 pos_a = position(a);
    const sim::Vec2 pos_b = position(b);
    double best_a = 0.0, best_b = 0.0;
    for (const AccessPoint& ap : access_points_) {
      if (!ap.active) continue;
      const sim::Vec2 ap_pos = position(ap.node);
      best_a = std::max(best_a, falloff(distance(pos_a, ap_pos), ap.range_m));
      best_b = std::max(best_b, falloff(distance(pos_b, ap_pos), ap.range_m));
    }
    return attenuated(std::min(best_a, best_b), a, b);
  }
  return attenuated(falloff(distance(position(a), position(b)),
                            profile.range_m),
                    a, b);
}

double Medium::attenuated(double physical, NodeId a, NodeId b) const {
  if (fault_ == nullptr || physical <= 0.0) return physical;
  const double factor = std::clamp(fault_->signal_factor(a, b), 0.0, 1.0);
  return physical * factor;
}

double Medium::frame_loss(const TechProfile& profile) {
  const double base = profile.frame_loss;
  if (fault_ == nullptr) return base;
  return std::clamp(fault_->frame_loss(profile.tech, base), 0.0, 1.0);
}

void Medium::ensure_spatial(Technology tech) const {
  TechAdapters& ta = tech_adapters_[static_cast<std::size_t>(tech)];
  const sim::Time now = simulator_.now();
  if (ta.built && !ta.dirty && ta.built_at == now) return;
  ta.positions.clear();
  ta.positions.reserve(ta.ids.size());
  for (const NodeId id : ta.ids) {
    ta.positions.push_back(position(id));
  }
  const double cell = config_.spatial_cell_m > 0.0
                          ? config_.spatial_cell_m
                          : std::max(1.0, ta.max_range_m * 0.5);
  ta.grid.rebuild(cell, ta.positions);
  ta.built_at = now;
  ta.built = true;
  ta.dirty = false;
  c_spatial_rebuilds_->inc();
}

std::vector<NodeId> Medium::nodes_in_range(NodeId node,
                                           const TechProfile& profile) const {
  std::vector<NodeId> out;
  const TechAdapters& ta =
      tech_adapters_[static_cast<std::size_t>(profile.tech)];
  // Only direct radios are range-limited; gateway techs reach everyone and
  // infrastructure reachability hangs off access-point geometry, so both
  // take the per-technology scan (already far smaller than the old
  // all-adapters map walk).
  const bool direct = !profile.via_gateway && !profile.infrastructure;
  if (config_.use_spatial_index && direct && !ta.ids.empty()) {
    ensure_spatial(profile.tech);
    spatial_scratch_.clear();
    const SpatialGrid::QueryStats qs =
        ta.grid.query(position(node), profile.range_m, spatial_scratch_);
    c_spatial_queries_->inc();
    c_spatial_cells_visited_->inc(qs.cells_visited);
    c_spatial_candidates_->inc(qs.candidates);
    c_spatial_pairs_pruned_->inc(ta.ids.size() - qs.candidates);
    for (std::uint32_t index : spatial_scratch_) {
      const NodeId peer = ta.ids[index];
      if (peer == node) continue;
      if (!ta.powered[index]) continue;
      if (!reachable(node, peer, profile)) continue;
      out.push_back(peer);
    }
    return out;
  }
  for (std::size_t i = 0; i < ta.ids.size(); ++i) {
    const NodeId peer = ta.ids[i];
    if (peer == node) continue;
    if (!ta.powered[i]) continue;
    if (!reachable(node, peer, profile)) continue;
    out.push_back(peer);
  }
  return out;
}

std::size_t Medium::open_link_count(NodeId node, Technology tech) const {
  if (node >= open_link_counts_.size()) return 0;
  return open_link_counts_[node][static_cast<std::size_t>(tech)];
}

sim::Duration Medium::transfer_time(const TechProfile& profile,
                                    std::size_t bytes, bool reliable) {
  const double serialize_s =
      static_cast<double>(bytes) * 8.0 / profile.bandwidth_bps;
  sim::Duration total = sim::seconds(serialize_s) + profile.base_latency;
  if (profile.via_gateway) total += 2 * profile.gateway_latency;  // up + down
  if (profile.infrastructure) total += profile.ap_relay;  // AP store&forward
  if (fault_ != nullptr) total += fault_->extra_latency(profile.tech);
  if (reliable) {
    // Each retransmission is its own frame attempt: the loss model is
    // consulted per attempt so burst windows (Gilbert–Elliott) advance.
    for (int i = 0; i < kMaxRetransmissions && rng_.chance(frame_loss(profile));
         ++i) {
      total += profile.retransmit_delay;
      c_retransmissions_->inc();
    }
  }
  h_transfer_us_->observe(static_cast<double>(total));
  return total;
}

void Medium::deliver_datagram(Adapter& from, NodeId dst, Port port,
                              BytesView payload) {
  c_datagrams_sent_->inc();
  const TechProfile& profile = from.profile();
  const TechCounters& tc = tech_counters_[static_cast<std::size_t>(profile.tech)];
  tc.datagram_bytes->inc(payload.size());
  tc.messages->inc();
  const obs::SpanId span = trace_.begin_span(
      "net.datagram", simulator_.now(), from.node(), "datagram");
  // The radio serializes its own transmissions; propagation (base latency,
  // gateway hops) happens "in the air" and does not occupy the radio.
  const sim::Time depart = std::max(simulator_.now(), from.tx_busy_until_);
  const sim::Duration serialize = sim::seconds(
      static_cast<double>(payload.size()) * 8.0 / profile.bandwidth_bps);
  const sim::Duration flight = transfer_time(profile, payload.size(), false);
  from.tx_busy_until_ = depart + serialize;
  if (depart > simulator_.now()) {
    // The frame waited for the radio: record the queueing window as a
    // child of the flight span (end known now — synthetic closed span).
    obs::Trace::Scope queued(trace_, span);
    const obs::SpanId q = trace_.begin_span("net.tx_queue", simulator_.now(),
                                            from.node(), "queue");
    trace_.end_span(q, depart);
  }
  if (rng_.chance(frame_loss(profile))) {
    c_datagrams_lost_->inc();
    trace_.end_span(span, simulator_.now());
    return;  // connectionless: lost frames are simply gone
  }
  const NodeId src = from.node();
  const Technology tech = profile.tech;
  // The in-flight frame lives in a pooled buffer: once the pool reaches its
  // high-water mark, steady-state sends stop allocating. The handle keeps a
  // weak reference to the pool, so closures destroyed after the Medium
  // (world teardown order) free instead of recycling.
  const obs::prof::TagScope delivery_tag(obs::prof::Center::net_delivery);
  simulator_.schedule_at(
      depart + flight,
      [this, src, dst, port, tech, span,
       frame = frame_pool_.acquire(payload.data(), payload.size())] {
        trace_.end_span(span, simulator_.now());
        // Re-resolve both endpoints at delivery time: movement or power
        // changes during flight drop the frame.
        Adapter* sender = adapter(src, tech);
        Adapter* receiver = adapter(dst, tech);
        if (sender == nullptr || receiver == nullptr) return;
        if (!sender->powered() || !receiver->powered()) return;
        if (!reachable(src, dst, sender->profile())) return;
        auto handler = receiver->datagram_handlers_.find(port);
        if (handler == receiver->datagram_handlers_.end()) return;
        auto fn = handler->second;  // copy: handler may rebind the port
        // The flight span id travelled inside this closure — the
        // datagram's trace context. Receive-side spans begun by the
        // handler parent under it, stitching the two devices' trees.
        obs::Trace::Scope causal(trace_, span);
        fn(src, BytesView{frame.data(), frame.size()});
      });
}

void Medium::start_inquiry(Adapter& from, InquiryHandler done) {
  c_inquiries_->inc();
  // Capture the profile by pointer: it is immutable and owned by the
  // adapter, which shares the Medium's lifetime (same assumption `this`
  // already makes). A by-value TechProfile would push the closure past the
  // EventFn inline buffer and back onto the heap.
  const TechProfile* profile = &from.profile();
  const NodeId src = from.node();
  const obs::SpanId span =
      trace_.begin_span("net.inquiry", simulator_.now(), src, "inquiry");
  const obs::prof::TagScope inquiry_tag(obs::prof::Center::net_inquiry);
  simulator_.schedule(profile->inquiry_duration,
                      [this, src, profile, span, done = std::move(done)] {
                        trace_.end_span(span, simulator_.now());
                        obs::Trace::Scope causal(trace_, span);
                        Adapter* self = adapter(src, profile->tech);
                        if (self == nullptr || !self->powered()) {
                          done({});
                          return;
                        }
                        std::vector<NodeId> found;
                        for (NodeId peer : nodes_in_range(src, *profile)) {
                          if (rng_.chance(profile->inquiry_detect_prob)) {
                            found.push_back(peer);
                          }
                        }
                        done(std::move(found));
                      });
}

void Medium::open_link(Adapter& from, NodeId dst, Port port,
                       ConnectHandler done) {
  // Pointer capture (see start_inquiry) keeps the closure inside EventFn's
  // inline buffer; LinkState still copies the profile when the link opens.
  const TechProfile* profile = &from.profile();
  const NodeId src = from.node();
  const obs::SpanId span =
      trace_.begin_span("net.link.open", simulator_.now(), src, "link");
  const obs::prof::TagScope link_tag(obs::prof::Center::net_link);
  simulator_.schedule(profile->connect_latency, [this, src, dst, port, profile,
                                                 span, done = std::move(done)] {
    trace_.end_span(span, simulator_.now());
    // Both the server-side accept and the client continuation run under
    // the link-open span: the server's handlers are causally downstream
    // of the remote connect even though they live on another device.
    obs::Trace::Scope causal(trace_, span);
    Adapter* self = adapter(src, profile->tech);
    if (self == nullptr || !self->powered()) {
      done(Error{Errc::connect_failed, "local adapter powered off"});
      return;
    }
    Adapter* peer = adapter(dst, profile->tech);
    if (peer == nullptr || !peer->powered() || !reachable(src, dst, *profile)) {
      done(Error{Errc::device_unreachable,
                 "node " + std::to_string(dst) + " not reachable over " +
                     profile->name});
      return;
    }
    auto listener = peer->listeners_.find(port);
    if (listener == peer->listeners_.end()) {
      done(Error{Errc::connect_failed,
                 "no listener on port " + std::to_string(port)});
      return;
    }
    // Radio capacity: a Bluetooth piconet carries at most 7 active links
    // per radio; either side being full refuses the connection.
    if (profile->max_links > 0 &&
        (open_link_count(src, profile->tech) >=
             static_cast<std::size_t>(profile->max_links) ||
         open_link_count(dst, profile->tech) >=
             static_cast<std::size_t>(profile->max_links))) {
      done(Error{Errc::radio_busy,
                 profile->name + " radio at link capacity (" +
                     std::to_string(profile->max_links) + ")"});
      return;
    }
    auto state = std::make_shared<detail::LinkState>();
    state->medium = this;
    state->profile = *profile;
    state->a = src;
    state->b = dst;
    state->port = port;
    state->open = true;
    links_.push_back(state);
    const std::size_t ti = static_cast<std::size_t>(profile->tech);
    ++open_link_counts_[src][ti];
    ++open_link_counts_[dst][ti];
    c_links_opened_->inc();
    PH_LOG(trace, "net") << "link " << src << "->" << dst << " port " << port
                         << " open (" << profile->name << ")";
    // Accept first so the server side installs its handlers before any
    // client payload can arrive.
    listener->second(Link{state, dst});
    done(Link{state, src});
  });
}

void Medium::link_send(const std::shared_ptr<detail::LinkState>& state,
                       NodeId sender, BytesView payload) {
  if (!state->open) return;
  c_link_messages_sent_->inc();
  c_link_bytes_sent_->inc(payload.size());
  const TechProfile& profile = state->profile;
  const TechCounters& tc = tech_counters_[static_cast<std::size_t>(profile.tech)];
  tc.link_bytes->inc(payload.size());
  tc.messages->inc();
  const obs::SpanId span =
      trace_.begin_span("net.link.send", simulator_.now(), sender, "link");
  sim::Time& busy =
      sender == state->a ? state->busy_a_to_b : state->busy_b_to_a;
  const sim::Time depart = std::max(simulator_.now(), busy);
  const sim::Duration flight = transfer_time(profile, payload.size(), true);
  if (depart > simulator_.now()) {
    obs::Trace::Scope queued(trace_, span);
    const obs::SpanId q = trace_.begin_span("net.tx_queue", simulator_.now(),
                                            sender, "queue");
    trace_.end_span(q, depart);
  }
  busy = depart + flight - profile.base_latency;
  const NodeId receiver = state->peer_of(sender);
  std::weak_ptr<detail::LinkState> weak = state;
  const obs::prof::TagScope delivery_tag(obs::prof::Center::net_delivery);
  simulator_.schedule_at(
      depart + flight,
      [this, weak, receiver, span,
       frame = frame_pool_.acquire(payload.data(), payload.size())] {
        trace_.end_span(span, simulator_.now());
        auto st = weak.lock();
        if (!st || !st->open) return;
        if (!reachable(st->a, st->b, st->profile)) {
          break_link(st);
          return;
        }
        // Invoke through a copy: the handler may replace itself (session
        // handshakes install new handlers), which would otherwise destroy
        // the executing lambda.
        auto rx = st->rx_for(receiver);
        // Cross-device causality: the receiver handles the frame under
        // the sender's flight span.
        obs::Trace::Scope causal(trace_, span);
        if (rx) rx(BytesView{frame.data(), frame.size()});
      });
}

void Medium::link_close(const std::shared_ptr<detail::LinkState>& state,
                        NodeId closer) {
  if (!state->open || state->closing) return;
  state->closing = true;
  // A closing link no longer occupies piconet capacity (open_link_count
  // always skipped `closing` links when it still scanned the world).
  unregister_link(*state);
  const NodeId peer = state->peer_of(closer);
  // Flush: messages already queued (e.g. an application-level goodbye sent
  // just before close()) still reach the peer; the link dies one
  // propagation delay after the last of them departs.
  const sim::Time flushed = std::max(
      {simulator_.now(), state->busy_a_to_b, state->busy_b_to_a});
  std::weak_ptr<detail::LinkState> weak = state;
  const obs::prof::TagScope link_tag(obs::prof::Center::net_link);
  simulator_.schedule_at(
      flushed + state->profile.base_latency, [weak, peer] {
        auto st = weak.lock();
        if (!st || !st->open) return;
        st->open = false;
        if (st->medium != nullptr) st->medium->note_dead_link();
        auto brk = st->brk_for(peer);  // copy: handler may reset itself
        // Release both sides' handlers: they may capture Link handles that
        // own this state, and a dead link must not keep such cycles alive.
        st->rx_a = nullptr;
        st->rx_b = nullptr;
        st->brk_a = nullptr;
        st->brk_b = nullptr;
        if (brk) brk();
      });
}

void Medium::break_link(const std::shared_ptr<detail::LinkState>& state) {
  if (!state->open) return;
  if (!state->closing) unregister_link(*state);  // else freed at close()
  state->open = false;
  note_dead_link();
  c_links_broken_->inc();
  PH_LOG(trace, "net") << "link " << state->a << "<->" << state->b
                       << " broke (" << state->profile.name << ")";
  auto brk_a = state->brk_a;
  auto brk_b = state->brk_b;
  state->rx_a = nullptr;
  state->rx_b = nullptr;
  state->brk_a = nullptr;
  state->brk_b = nullptr;
  if (brk_a) brk_a();
  if (brk_b) brk_b();
}

void Medium::unregister_link(const detail::LinkState& state) {
  const std::size_t ti = static_cast<std::size_t>(state.profile.tech);
  for (NodeId side : {state.a, state.b}) {
    if (side >= open_link_counts_.size()) continue;
    std::uint32_t& count = open_link_counts_[side][ti];
    if (count > 0) --count;
  }
}

void Medium::note_dead_link() {
  ++dead_links_;
  if (dead_links_ >= 32 && dead_links_ * 2 >= links_.size()) compact_links();
}

void Medium::compact_links() {
  std::erase_if(links_, [](const std::weak_ptr<detail::LinkState>& weak) {
    auto state = weak.lock();
    return !state || !state->open;
  });
  dead_links_ = 0;
  c_links_compacted_->inc();
}

void Medium::break_links_of(NodeId node, Technology tech) {
  // Collect first: break handlers may open new links and mutate links_.
  std::vector<std::shared_ptr<detail::LinkState>> affected;
  for (auto it = links_.begin(); it != links_.end();) {
    auto state = it->lock();
    if (!state || !state->open) {
      it = links_.erase(it);
      continue;
    }
    if ((state->a == node || state->b == node) && state->profile.tech == tech) {
      affected.push_back(std::move(state));
    }
    ++it;
  }
  for (auto& state : affected) break_link(state);
}

}  // namespace ph::net
