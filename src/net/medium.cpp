#include "net/medium.hpp"

#include <cassert>

#include "net/link_state.hpp"
#include "util/log.hpp"

namespace ph::net {

namespace {
constexpr int kMaxRetransmissions = 5;

std::pair<NodeId, int> adapter_key(NodeId node, Technology tech) {
  return {node, static_cast<int>(tech)};
}
}  // namespace

Medium::Medium(sim::Simulator& simulator, sim::Rng rng)
    : simulator_(simulator), rng_(rng) {}

Medium::~Medium() = default;

NodeId Medium::add_node(std::string name,
                        std::unique_ptr<sim::MobilityModel> mobility) {
  assert(mobility != nullptr);
  const NodeId id = next_node_++;
  nodes_.emplace(id, NodeEntry{std::move(name), std::move(mobility)});
  return id;
}

void Medium::set_mobility(NodeId node,
                          std::unique_ptr<sim::MobilityModel> mobility) {
  assert(mobility != nullptr);
  nodes_.at(node).mobility = std::move(mobility);
}

const std::string& Medium::node_name(NodeId node) const {
  return nodes_.at(node).name;
}

sim::Vec2 Medium::position(NodeId node) const {
  return nodes_.at(node).mobility->position_at(simulator_.now());
}

const Medium::TechTraffic& Medium::traffic(Technology tech) const {
  return traffic_[static_cast<std::size_t>(tech)];
}

NodeId Medium::add_access_point(std::string name, sim::Vec2 position,
                                double range_m) {
  const NodeId id =
      add_node(std::move(name), std::make_unique<sim::StaticMobility>(position));
  access_points_.push_back(AccessPoint{id, range_m, true});
  return id;
}

void Medium::set_access_point_active(NodeId ap, bool active) {
  for (AccessPoint& entry : access_points_) {
    if (entry.node != ap) continue;
    entry.active = active;
    if (!active) {
      // The cell went dark: break every infrastructure link that no other
      // AP can carry, so applications learn immediately — losing
      // association is not a silent event.
      std::vector<std::shared_ptr<detail::LinkState>> affected;
      for (const auto& weak : links_) {
        auto state = weak.lock();
        if (!state || !state->open) continue;
        if (state->profile.infrastructure &&
            !reachable(state->a, state->b, state->profile)) {
          affected.push_back(std::move(state));
        }
      }
      for (auto& state : affected) break_link(state);
    }
    return;
  }
}

Adapter& Medium::add_adapter(NodeId node, TechProfile profile) {
  assert(nodes_.contains(node));
  auto key = adapter_key(node, profile.tech);
  assert(!adapters_.contains(key) && "one adapter per (node, technology)");
  auto adapter = std::make_unique<Adapter>(*this, node, std::move(profile));
  Adapter& ref = *adapter;
  adapters_.emplace(key, std::move(adapter));
  return ref;
}

Adapter* Medium::adapter(NodeId node, Technology tech) {
  auto it = adapters_.find(adapter_key(node, tech));
  return it == adapters_.end() ? nullptr : it->second.get();
}

const Adapter* Medium::adapter(NodeId node, Technology tech) const {
  auto it = adapters_.find(adapter_key(node, tech));
  return it == adapters_.end() ? nullptr : it->second.get();
}

bool Medium::reachable(NodeId a, NodeId b, const TechProfile& profile) const {
  return signal(a, b, profile) > 0.0;
}

namespace {
/// Quadratic falloff: 1 at 0 m, 0 at/beyond `range`.
double falloff(double distance_m, double range_m) {
  if (distance_m >= range_m) return 0.0;
  const double frac = distance_m / range_m;
  return 1.0 - frac * frac;
}
}  // namespace

double Medium::signal(NodeId a, NodeId b, const TechProfile& profile) const {
  if (a == b) return 0.0;
  const Adapter* aa = adapter(a, profile.tech);
  const Adapter* ab = adapter(b, profile.tech);
  if (aa == nullptr || ab == nullptr || !aa->powered() || !ab->powered()) return 0.0;
  if (profile.via_gateway) return 1.0;  // cellular coverage assumed ubiquitous
  if (profile.infrastructure) {
    // Stations associate with their best access point; APs bridge over the
    // wired distribution system (thesis §2.4.2: "Inter-networking with
    // wired LAN is allowed in infrastructure mode"). The end-to-end signal
    // is the weaker of the two stations' own AP legs.
    const sim::Vec2 pos_a = position(a);
    const sim::Vec2 pos_b = position(b);
    double best_a = 0.0, best_b = 0.0;
    for (const AccessPoint& ap : access_points_) {
      if (!ap.active) continue;
      const sim::Vec2 ap_pos = position(ap.node);
      best_a = std::max(best_a, falloff(distance(pos_a, ap_pos), ap.range_m));
      best_b = std::max(best_b, falloff(distance(pos_b, ap_pos), ap.range_m));
    }
    return std::min(best_a, best_b);
  }
  return falloff(distance(position(a), position(b)), profile.range_m);
}

std::vector<NodeId> Medium::nodes_in_range(NodeId node,
                                           const TechProfile& profile) const {
  std::vector<NodeId> out;
  for (const auto& [key, adapter] : adapters_) {
    if (key.second != static_cast<int>(profile.tech)) continue;
    if (key.first == node) continue;
    if (!adapter->powered()) continue;
    if (!reachable(node, key.first, profile)) continue;
    out.push_back(key.first);
  }
  return out;
}

std::size_t Medium::open_link_count(NodeId node, Technology tech) const {
  std::size_t count = 0;
  for (const auto& weak : links_) {
    auto state = weak.lock();
    if (!state || !state->open || state->closing) continue;
    if (state->profile.tech != tech) continue;
    if (state->a == node || state->b == node) ++count;
  }
  return count;
}

sim::Duration Medium::transfer_time(const TechProfile& profile,
                                    std::size_t bytes, bool reliable) {
  const double serialize_s =
      static_cast<double>(bytes) * 8.0 / profile.bandwidth_bps;
  sim::Duration total = sim::seconds(serialize_s) + profile.base_latency;
  if (profile.via_gateway) total += 2 * profile.gateway_latency;  // up + down
  if (profile.infrastructure) total += profile.ap_relay;  // AP store&forward
  if (reliable) {
    for (int i = 0; i < kMaxRetransmissions && rng_.chance(profile.frame_loss);
         ++i) {
      total += profile.retransmit_delay;
      ++stats_.retransmissions;
    }
  }
  return total;
}

void Medium::deliver_datagram(Adapter& from, NodeId dst, Port port,
                              Bytes payload) {
  ++stats_.datagrams_sent;
  const TechProfile& profile = from.profile();
  TechTraffic& traffic = traffic_[static_cast<std::size_t>(profile.tech)];
  traffic.datagram_bytes += payload.size();
  ++traffic.messages;
  // The radio serializes its own transmissions; propagation (base latency,
  // gateway hops) happens "in the air" and does not occupy the radio.
  const sim::Time depart = std::max(simulator_.now(), from.tx_busy_until_);
  const sim::Duration serialize = sim::seconds(
      static_cast<double>(payload.size()) * 8.0 / profile.bandwidth_bps);
  const sim::Duration flight = transfer_time(profile, payload.size(), false);
  from.tx_busy_until_ = depart + serialize;
  if (rng_.chance(profile.frame_loss)) {
    ++stats_.datagrams_lost;
    return;  // connectionless: lost frames are simply gone
  }
  const NodeId src = from.node();
  const Technology tech = profile.tech;
  simulator_.schedule_at(
      depart + flight,
      [this, src, dst, port, tech, payload = std::move(payload)] {
        // Re-resolve both endpoints at delivery time: movement or power
        // changes during flight drop the frame.
        Adapter* sender = adapter(src, tech);
        Adapter* receiver = adapter(dst, tech);
        if (sender == nullptr || receiver == nullptr) return;
        if (!sender->powered() || !receiver->powered()) return;
        if (!reachable(src, dst, sender->profile())) return;
        auto handler = receiver->datagram_handlers_.find(port);
        if (handler == receiver->datagram_handlers_.end()) return;
        auto fn = handler->second;  // copy: handler may rebind the port
        fn(src, payload);
      });
}

void Medium::start_inquiry(Adapter& from, InquiryHandler done) {
  ++stats_.inquiries;
  const TechProfile profile = from.profile();
  const NodeId src = from.node();
  simulator_.schedule(profile.inquiry_duration,
                      [this, src, profile, done = std::move(done)] {
                        Adapter* self = adapter(src, profile.tech);
                        if (self == nullptr || !self->powered()) {
                          done({});
                          return;
                        }
                        std::vector<NodeId> found;
                        for (NodeId peer : nodes_in_range(src, profile)) {
                          if (rng_.chance(profile.inquiry_detect_prob)) {
                            found.push_back(peer);
                          }
                        }
                        done(std::move(found));
                      });
}

void Medium::open_link(Adapter& from, NodeId dst, Port port,
                       ConnectHandler done) {
  const TechProfile profile = from.profile();
  const NodeId src = from.node();
  simulator_.schedule(profile.connect_latency, [this, src, dst, port, profile,
                                                done = std::move(done)] {
    Adapter* self = adapter(src, profile.tech);
    if (self == nullptr || !self->powered()) {
      done(Error{Errc::connect_failed, "local adapter powered off"});
      return;
    }
    Adapter* peer = adapter(dst, profile.tech);
    if (peer == nullptr || !peer->powered() || !reachable(src, dst, profile)) {
      done(Error{Errc::device_unreachable,
                 "node " + std::to_string(dst) + " not reachable over " +
                     profile.name});
      return;
    }
    auto listener = peer->listeners_.find(port);
    if (listener == peer->listeners_.end()) {
      done(Error{Errc::connect_failed,
                 "no listener on port " + std::to_string(port)});
      return;
    }
    // Radio capacity: a Bluetooth piconet carries at most 7 active links
    // per radio; either side being full refuses the connection.
    if (profile.max_links > 0 &&
        (open_link_count(src, profile.tech) >=
             static_cast<std::size_t>(profile.max_links) ||
         open_link_count(dst, profile.tech) >=
             static_cast<std::size_t>(profile.max_links))) {
      done(Error{Errc::radio_busy,
                 profile.name + " radio at link capacity (" +
                     std::to_string(profile.max_links) + ")"});
      return;
    }
    auto state = std::make_shared<detail::LinkState>();
    state->medium = this;
    state->profile = profile;
    state->a = src;
    state->b = dst;
    state->port = port;
    state->open = true;
    links_.push_back(state);
    ++stats_.links_opened;
    PH_LOG(trace, "net") << "link " << src << "->" << dst << " port " << port
                         << " open (" << profile.name << ")";
    // Accept first so the server side installs its handlers before any
    // client payload can arrive.
    listener->second(Link{state, dst});
    done(Link{state, src});
  });
}

void Medium::link_send(const std::shared_ptr<detail::LinkState>& state,
                       NodeId sender, Bytes payload) {
  if (!state->open) return;
  ++stats_.link_messages_sent;
  stats_.link_bytes_sent += payload.size();
  const TechProfile& profile = state->profile;
  TechTraffic& traffic = traffic_[static_cast<std::size_t>(profile.tech)];
  traffic.link_bytes += payload.size();
  ++traffic.messages;
  sim::Time& busy =
      sender == state->a ? state->busy_a_to_b : state->busy_b_to_a;
  const sim::Time depart = std::max(simulator_.now(), busy);
  const sim::Duration flight = transfer_time(profile, payload.size(), true);
  busy = depart + flight - profile.base_latency;
  const NodeId receiver = state->peer_of(sender);
  std::weak_ptr<detail::LinkState> weak = state;
  simulator_.schedule_at(
      depart + flight,
      [this, weak, receiver, payload = std::move(payload)] {
        auto st = weak.lock();
        if (!st || !st->open) return;
        if (!reachable(st->a, st->b, st->profile)) {
          break_link(st);
          return;
        }
        // Invoke through a copy: the handler may replace itself (session
        // handshakes install new handlers), which would otherwise destroy
        // the executing lambda.
        auto rx = st->rx_for(receiver);
        if (rx) rx(payload);
      });
}

void Medium::link_close(const std::shared_ptr<detail::LinkState>& state,
                        NodeId closer) {
  if (!state->open || state->closing) return;
  state->closing = true;
  const NodeId peer = state->peer_of(closer);
  // Flush: messages already queued (e.g. an application-level goodbye sent
  // just before close()) still reach the peer; the link dies one
  // propagation delay after the last of them departs.
  const sim::Time flushed = std::max(
      {simulator_.now(), state->busy_a_to_b, state->busy_b_to_a});
  std::weak_ptr<detail::LinkState> weak = state;
  simulator_.schedule_at(
      flushed + state->profile.base_latency, [weak, peer] {
        auto st = weak.lock();
        if (!st || !st->open) return;
        st->open = false;
        auto brk = st->brk_for(peer);  // copy: handler may reset itself
        // Release both sides' handlers: they may capture Link handles that
        // own this state, and a dead link must not keep such cycles alive.
        st->rx_a = nullptr;
        st->rx_b = nullptr;
        st->brk_a = nullptr;
        st->brk_b = nullptr;
        if (brk) brk();
      });
}

void Medium::break_link(const std::shared_ptr<detail::LinkState>& state) {
  if (!state->open) return;
  state->open = false;
  ++stats_.links_broken;
  PH_LOG(trace, "net") << "link " << state->a << "<->" << state->b
                       << " broke (" << state->profile.name << ")";
  auto brk_a = state->brk_a;
  auto brk_b = state->brk_b;
  state->rx_a = nullptr;
  state->rx_b = nullptr;
  state->brk_a = nullptr;
  state->brk_b = nullptr;
  if (brk_a) brk_a();
  if (brk_b) brk_b();
}

void Medium::break_links_of(NodeId node, Technology tech) {
  // Collect first: break handlers may open new links and mutate links_.
  std::vector<std::shared_ptr<detail::LinkState>> affected;
  for (auto it = links_.begin(); it != links_.end();) {
    auto state = it->lock();
    if (!state || !state->open) {
      it = links_.erase(it);
      continue;
    }
    if ((state->a == node || state->b == node) && state->profile.tech == tech) {
      affected.push_back(std::move(state));
    }
    ++it;
  }
  for (auto& state : affected) break_link(state);
}

}  // namespace ph::net
