#include "net/adapter.hpp"

#include "net/medium.hpp"
#include "util/log.hpp"

namespace ph::net {

Adapter::Adapter(Medium& medium, NodeId node, TechProfile profile)
    : medium_(medium), node_(node), profile_(std::move(profile)) {}

void Adapter::set_powered(bool on) {
  if (powered_ == on) return;
  powered_ = on;
  medium_.note_adapter_power(*this, on);  // keep the SoA powered mirror honest
  // Signals memoized earlier in this timestamp assumed the old power state.
  medium_.invalidate_signal_memo();
  PH_LOG(debug, "net") << "node " << node_ << " " << profile_.name
                       << (on ? " powered on" : " powered off");
  if (!on) medium_.break_links_of(node_, profile_.tech);
}

void Adapter::start_inquiry(InquiryHandler done) {
  medium_.start_inquiry(*this, std::move(done));
}

void Adapter::bind(Port port, DatagramHandler handler) {
  datagram_handlers_[port] = std::move(handler);
}

void Adapter::unbind(Port port) { datagram_handlers_.erase(port); }

void Adapter::send_datagram(NodeId dst, Port port, BytesView payload) {
  if (!powered_) return;
  medium_.deliver_datagram(*this, dst, port, payload);
}

void Adapter::broadcast_datagram(Port port, BytesView payload) {
  if (!powered_ || !profile_.supports_broadcast) return;
  // Modelled as one unicast per in-range peer: per-receiver loss, and the
  // (tiny, control-sized) payload serializes once per target — a
  // conservative over-approximation of one frame on the air.
  for (NodeId peer : medium_.nodes_in_range(node_, profile_)) {
    medium_.deliver_datagram(*this, peer, port, payload);
  }
}

void Adapter::listen(Port port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
}

void Adapter::stop_listen(Port port) { listeners_.erase(port); }

void Adapter::connect(NodeId dst, Port port, ConnectHandler done) {
  if (!powered_) {
    done(Error{Errc::connect_failed, "local adapter powered off"});
    return;
  }
  medium_.open_link(*this, dst, port, std::move(done));
}

double Adapter::signal_to(NodeId dst) const {
  return medium_.signal(node_, dst, profile_);
}

}  // namespace ph::net
