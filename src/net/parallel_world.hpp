// ParallelWorld — a city-scale radio world hosted on the ShardedKernel.
//
// The classic Medium + Stack pipeline carries the full PeerHood daemon per
// device and tops out around ~512 devices; the ROADMAP north star (50k–100k
// devices, DTN-style mobility) needs the medium hot path — inquiry scans,
// neighbour pings, small data operations — stripped to its SoA essentials
// and partitioned across cores. ParallelWorld is that hot path:
//
//   * The field is cut into S vertical strips, one per kernel shard. A
//     device belongs to the strip containing its position; all of its
//     events (scan timer, frame arrivals) run on that shard's Simulator.
//   * Each shard keeps a SpatialGrid over its owned devices plus a halo of
//     `range_m` from the two adjacent strips, so a scan never needs another
//     shard's grid. Grids are rebuilt from a frozen position snapshot taken
//     at refresh barriers — positions do not move mid-window, which is what
//     makes a scan's neighbour set independent of execution order.
//   * Frames to devices in another strip cross via ShardedKernel::post with
//     at least `base_latency` of flight time — exactly the kernel's
//     conservative-lookahead bound, so in-window posts are never clamped.
//   * At refresh barriers (every `refresh` of virtual time, rounded up to
//     whole lookahead windows) the hook samples mobility, migrates devices
//     whose position crossed a strip edge (cancel + reschedule of their
//     scan timer on the new owner — deterministic, it depends only on
//     positions), rebuilds grids, and publishes metrics.
//
// Determinism contract (inherited from the kernel, extended to the world):
// every random draw comes from a per-device SmallRng stream seeded from the
// world seed by device id — never from a per-shard or per-thread stream —
// and outage waves are a pure hash of (seed, device, wave index). Same
// seed + same shard count ⇒ byte-identical metrics/series/trace dumps at
// any thread count. Wall-clock telemetry (lookahead stalls) is published
// only when `publish_wall_stats` is set, keeping deterministic dumps clean.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/spatial.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/world.hpp"

namespace ph::net {

struct ParallelWorldConfig {
  std::uint32_t devices = 1000;
  /// Shard count — part of the world definition (see ShardedKernel).
  unsigned shards = 8;
  /// Worker threads; any value yields byte-identical results.
  unsigned threads = 1;
  std::uint64_t seed = 1;
  /// Field edge in metres; 0 auto-sizes to constant density (the
  /// overlay_scale convention: 60 m for 40 devices, scaled by sqrt(N/40)).
  double field_m = 0.0;

  // Radio (bluetooth_2_0 figures).
  double range_m = 10.0;
  double bits_per_second = 723'000.0;
  sim::Duration base_latency = sim::milliseconds(30);

  // Discovery + traffic.
  sim::Duration scan_interval = sim::seconds(2.0);
  sim::Duration scan_jitter = sim::milliseconds(100);
  /// Probability that a scan with a non-empty neighbour table starts a
  /// small data operation (request → ack, Table-8 style).
  double op_probability = 0.2;
  std::uint32_t op_bytes = 4096;

  // Mobility (random waypoint, compact walker).
  double speed_min_mps = 0.5;
  double speed_max_mps = 2.0;
  sim::Duration pause = sim::seconds(5.0);

  // Faults.
  double frame_loss = 0.01;
  /// Fraction of devices dark per outage wave; 0 disables outages.
  double outage_fraction = 0.05;
  sim::Duration outage_period = sim::seconds(30.0);
  sim::Duration outage_duration = sim::seconds(5.0);

  /// Position/grid/metric refresh cadence; rounded up to whole lookahead
  /// windows. Shorter tracks mobility more finely but rebuilds grids more
  /// often.
  sim::Duration refresh = sim::milliseconds(240);

  /// Virtual-time series scrape interval; 0 disables the sampler.
  std::uint64_t sample_interval_us = 0;
  /// Publish wall-clock lookahead-stall gauges (sim.shard.*.stall). These
  /// are NOT deterministic; leave off for byte-compared dumps.
  bool publish_wall_stats = false;
  /// Mode 1 cost attribution: per-shard obs::prof::EventProfilers whose
  /// `prof.<center>.events` counters publish at barriers. The counts are
  /// deterministic (a pure function of the event stream), so they stay
  /// INSIDE byte-compared dumps — ph_chaos_determinism pins that.
  bool profile = true;
  /// Also time every dispatch into `prof.<center>.wall_us` histograms
  /// (plus `prof.slow_events`). Wall-clock: same determinism caveat as
  /// publish_wall_stats — leave off for byte-compared dumps.
  bool profile_wall = false;
  /// Mode 2 sampling profiler: forwarded to the kernel so worker threads
  /// register their span stacks. Must outlive the world. Optional.
  obs::prof::WallProfiler* wall_sampler = nullptr;
};

class ParallelWorld {
 public:
  /// Deterministic aggregate counters, summed over shards on demand.
  struct Totals {
    std::uint64_t scans = 0;
    std::uint64_t discoveries = 0;
    std::uint64_t losses = 0;
    std::uint64_t pings_sent = 0;
    std::uint64_t pings_received = 0;
    std::uint64_t pings_lost = 0;
    std::uint64_t outage_drops = 0;
    std::uint64_t ops_started = 0;
    std::uint64_t ops_completed = 0;
    std::uint64_t ops_dropped = 0;
    std::uint64_t forwards = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t migrations = 0;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::uint64_t cross_sent = 0;
    std::uint64_t cross_clamped = 0;
    std::uint64_t cancelled_live = 0;
  };

  explicit ParallelWorld(ParallelWorldConfig config);

  /// Advances virtual time; metrics are re-published at the final barrier.
  void run_for(sim::Duration d);

  const ParallelWorldConfig& config() const noexcept { return config_; }
  double field_m() const noexcept { return field_m_; }
  sim::ShardedKernel& kernel() noexcept { return kernel_; }
  obs::Registry& registry() noexcept { return registry_; }
  obs::Trace& trace() noexcept { return trace_; }
  /// Non-null iff sample_interval_us > 0.
  obs::Sampler* sampler() noexcept { return sampler_.get(); }
  Totals totals() const;
  /// Current owner shard of a device (tests).
  unsigned owner(std::uint32_t device) const { return owner_[device]; }

  /// Called single-threaded at every refresh barrier, after metrics
  /// publish — the hook point for pumping an embedded OpsServer.
  void set_barrier_poll(std::function<void()> poll) {
    poll_ = std::move(poll);
  }

 private:
  /// Per-device random-waypoint walker: 8-byte RNG + current leg. Legs are
  /// generated lazily as positions are sampled at (monotonic) refresh
  /// times, so memory stays ~64 bytes per device at 100k devices.
  struct Walker {
    sim::SmallRng rng{0};
    sim::Vec2 from;
    sim::Vec2 to;
    sim::Time depart = 0;
    sim::Time arrive = 0;
  };

  struct Device {
    Walker walker;
    sim::SmallRng rng{0};             // loss/jitter/op draws, scan jitter
    std::vector<std::uint32_t> neighbours;  // sorted device ids
    sim::Time next_scan = 0;
    std::uint64_t scan_event = 0;
  };

  /// Deterministic per-shard counters, owned exclusively by the shard's
  /// phase-A events; summed single-threaded at barriers.
  struct Counters {
    std::uint64_t scans = 0;
    std::uint64_t discoveries = 0;
    std::uint64_t losses = 0;
    std::uint64_t pings_sent = 0;
    std::uint64_t pings_received = 0;
    std::uint64_t pings_lost = 0;
    std::uint64_t outage_drops = 0;
    std::uint64_t ops_started = 0;
    std::uint64_t ops_completed = 0;
    std::uint64_t ops_dropped = 0;
    std::uint64_t forwards = 0;
    std::uint64_t bytes_sent = 0;
  };

  struct alignas(64) Shard {
    Counters c;
    std::vector<std::uint32_t> owned;       // device ids, unordered
    std::vector<std::uint32_t> candidates;  // grid index -> device id
    std::vector<sim::Vec2> cand_pos;
    SpatialGrid grid;
    std::vector<std::uint32_t> query_scratch;
    std::vector<std::uint32_t> found_scratch;
    /// Completed-op latencies buffered by phase-A events, drained into the
    /// registry histogram at barriers (Registry is not thread-safe).
    std::vector<double> latency_scratch;
    // Last-published totals (registry counters only take deltas).
    std::uint64_t prev_events = 0;
    std::uint64_t prev_cross_sent = 0;
    std::uint64_t prev_cross_received = 0;
  };

  struct Frame {
    enum class Kind : std::uint8_t { kPing, kOpRequest, kOpAck };
    Kind kind = Kind::kPing;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    sim::Time op_start = 0;
  };

  unsigned strip_of(sim::Vec2 pos) const;
  bool in_outage(std::uint32_t device, sim::Time t) const;
  sim::Duration transfer_time(std::uint32_t bytes) const;
  sim::Vec2 walker_position(Walker& w, sim::Time t) const;

  void run_scan(std::uint32_t device);
  void start_op(unsigned s, std::uint32_t device, sim::Time now);
  sim::EventFn frame_event(Frame f, unsigned expect_shard);
  void send_frame(unsigned src_shard, Frame f, sim::Time when);
  void handle_frame(const Frame& f, unsigned s, sim::Time now);

  void on_barrier(sim::Time now);
  void refresh(sim::Time now);
  void migrate(sim::Time now);
  void rebuild_grid(unsigned s);
  void publish_metrics();

  ParallelWorldConfig config_;
  double field_m_ = 0.0;
  double strip_w_ = 0.0;
  sim::ShardedKernel kernel_;
  std::vector<Device> devices_;
  std::vector<sim::Vec2> positions_;   // frozen snapshot, refreshed at barriers
  std::vector<unsigned> owner_;        // device id -> shard
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t migrations_ = 0;
  std::uint64_t prev_migrations_ = 0;
  Counters world_prev_;                // last-published world totals
  std::uint64_t windows_since_refresh_ = 0;
  std::uint64_t refresh_windows_ = 1;
  std::uint64_t last_wave_ = ~0ULL;

  obs::Registry registry_;
  obs::Trace trace_;
  std::unique_ptr<obs::Sampler> sampler_;
  sim::Time next_sample_at_ = 0;
  std::function<void()> poll_;
};

}  // namespace ph::net
