// Medium — the simulated radio world.
//
// Owns the node registry (position = mobility model sampled at virtual
// time), one Adapter per (device, technology), and the frame-delivery
// machinery: reachability, signal strength, bandwidth serialization,
// propagation latency, loss/retransmission and link breakage.
//
// This is the substitution for the thesis' physical testbed (ComLab room
// 6604, Bluetooth dongles, people carrying laptops): every quantity the
// paper's evaluation depends on — who is in range when, how long discovery
// and transfers take — is produced here from technology profiles instead of
// physics.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/adapter.hpp"
#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/spatial.hpp"
#include "net/tech.hpp"
#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/mobility.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"

namespace ph::net {

/// Tuning knobs for the world's proximity machinery. The defaults are the
/// fast path; the brute-force switches exist for A/B validation (the
/// spatial property test runs one world of each and asserts bit-identical
/// results) and for honest baseline numbers in the scale benches.
struct MediumConfig {
  /// Route direct-radio range queries through the uniform-grid index
  /// (O(k) candidates per query) instead of scanning every same-technology
  /// adapter (O(N)). Results are identical either way — the grid is a pure
  /// prune and the exact reachability predicate is always re-applied.
  bool use_spatial_index = true;
  /// Memoize MobilityModel::position_at per (node, virtual timestamp) so a
  /// signal() evaluation costs at most one mobility sample per endpoint
  /// instead of 2–4 virtual-dispatch samples per call.
  bool use_position_cache = true;
  /// Memoize signal() per (ordered pair, profile shape, virtual timestamp).
  /// Hot paths evaluate the same pair several times inside one timestamp —
  /// the delivery-time reachability recheck plus the receiver's signal
  /// sample — and the memo collapses those to one physics evaluation.
  /// Anything that can change signal mid-timestamp (adapter power, AP
  /// state, mobility swaps, fault-plane ramps) bumps an epoch clearing it.
  bool use_signal_cache = true;
  /// Grid cell edge in metres; 0 = auto (half the technology's largest
  /// adapter range, which bounds a query's bounding box to ~6 cells/axis).
  double spatial_cell_m = 0.0;
};

class Medium {
 public:
  /// Per-technology byte accounting. The thesis' cost argument ("the cost
  /// of data service is low as Bluetooth and WLAN can be primely used",
  /// §5.1) needs to know how many bytes travelled over the metered
  /// cellular link vs the free short-range radios.
  struct TechTraffic {
    std::uint64_t datagram_bytes = 0;
    std::uint64_t link_bytes = 0;
    std::uint64_t messages = 0;

    std::uint64_t total_bytes() const { return datagram_bytes + link_bytes; }
  };

  Medium(sim::Simulator& simulator, sim::Rng rng, MediumConfig config = {});
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;
  ~Medium();

  // --- world ------------------------------------------------------------
  /// Adds a device to the world. Ids start at 1 and are dense.
  NodeId add_node(std::string name, std::unique_ptr<sim::MobilityModel> mobility);

  /// Replaces a node's mobility model (scenario phase changes).
  void set_mobility(NodeId node, std::unique_ptr<sim::MobilityModel> mobility);

  const std::string& node_name(NodeId node) const;
  sim::Vec2 position(NodeId node) const;  ///< sampled at current virtual time
  std::size_t node_count() const noexcept { return node_names_.size() - 1; }
  /// Node-id → name map in the shape obs::to_chrome_trace wants for
  /// naming per-device tracks.
  std::map<std::uint64_t, std::string> trace_device_names() const;

  // --- access points ------------------------------------------------------
  /// Installs a WLAN access point (infrastructure mode, thesis §2.4.2).
  /// Stations whose profile has `infrastructure` set are mutually
  /// reachable iff both are within `range_m` of a common active AP.
  NodeId add_access_point(std::string name, sim::Vec2 position,
                          double range_m);
  /// Powers an AP on/off (failure injection; a dead AP partitions its cell).
  void set_access_point_active(NodeId ap, bool active);

  // --- adapters ---------------------------------------------------------
  /// Creates the radio of `profile.tech` on `node`. At most one adapter per
  /// (node, technology); creating a second replaces profile-compatible
  /// lookup and is a programming error (asserts).
  Adapter& add_adapter(NodeId node, TechProfile profile);

  /// The node's adapter for a technology, or nullptr if it has none.
  Adapter* adapter(NodeId node, Technology tech);
  const Adapter* adapter(NodeId node, Technology tech) const;

  // --- physics ----------------------------------------------------------
  /// True when b can hear a's `profile` radio right now (both powered,
  /// within range or gateway-routed).
  bool reachable(NodeId a, NodeId b, const TechProfile& profile) const;

  /// Signal strength in [0,1]: 1 at zero distance, 0 at/beyond range.
  double signal(NodeId a, NodeId b, const TechProfile& profile) const;

  /// Powered same-technology peers currently in range of `node`.
  std::vector<NodeId> nodes_in_range(NodeId node, const TechProfile& profile) const;

  /// Open links currently carried by `node`'s `tech` radio (piconet load).
  /// O(log n) via per-node bookkeeping — no weak_ptr scan.
  std::size_t open_link_count(NodeId node, Technology tech) const;

  /// Link-state entries (open + not-yet-compacted dead) the world tracks.
  /// Exposed so tests can assert the registry does not grow without bound
  /// across long open/close churn.
  std::size_t tracked_link_count() const noexcept { return links_.size(); }

  const MediumConfig& config() const noexcept { return config_; }

  /// Typed view of the registry's `net.medium.*` instruments
  /// (`stats().counter("datagrams_sent")`, ...); the registry is the
  /// source of truth.
  obs::Snapshot stats() const { return registry_.snapshot("net.medium."); }
  /// Bytes/messages carried by one technology since construction
  /// (snapshot of the registry's `net.tech.<name>.*` counters).
  TechTraffic traffic(Technology tech) const;
  sim::Simulator& simulator() noexcept { return simulator_; }
  sim::Rng& rng() noexcept { return rng_; }

  // --- fault plane ---------------------------------------------------------
  /// Installs (or, with nullptr, removes) the world's fault injector. The
  /// Medium consults it on every frame attempt, propagation-delay
  /// computation and signal sample; without one, behaviour — including RNG
  /// consumption — is identical to a fault-free world. The injector must
  /// outlive the Medium or be removed first.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
    invalidate_signal_memo();
  }
  FaultInjector* fault_injector() const noexcept { return fault_; }

  /// Drops the per-timestamp signal memo. Every mutation that can change
  /// signal strength *within* the current virtual timestamp must call this
  /// — adapter power flips, AP activation, mobility swaps, a fault plane
  /// whose signal_factor state changed (e.g. a ramp beginning). Cheap: it
  /// bumps an epoch and the memo clears lazily on next lookup.
  void invalidate_signal_memo() noexcept { ++world_epoch_; }

  /// The world's metrics registry. The Medium is the root object every
  /// layer can reach (daemon → medium, stack → medium), so it owns the
  /// per-world registry and trace journal that all layers publish into.
  obs::Registry& registry() noexcept { return registry_; }
  const obs::Registry& registry() const noexcept { return registry_; }
  /// The world's virtual-time trace journal (disabled by default; call
  /// trace().set_enabled(true) before the scenario starts to record).
  obs::Trace& trace() noexcept { return trace_; }
  const obs::Trace& trace() const noexcept { return trace_; }

 private:
  friend class Adapter;
  friend class Link;

  /// Time to push `bytes` through the radio plus propagation, including
  /// randomized retransmission delays for reliable (link) traffic.
  sim::Duration transfer_time(const TechProfile& profile, std::size_t bytes,
                              bool reliable);

  /// One frame attempt's loss probability: the profile's steady-state
  /// `frame_loss`, raised by the installed fault injector (burst windows).
  double frame_loss(const TechProfile& profile);

  /// Applies the fault injector's signal factor to a physical signal.
  double attenuated(double physical, NodeId a, NodeId b) const;

  /// The uncached signal computation (geometry + fault attenuation);
  /// signal() is the memoizing wrapper around it.
  double signal_physics(NodeId a, NodeId b, const TechProfile& profile) const;

  // Internal helpers used by Adapter/Link (implemented in medium.cpp).
  void deliver_datagram(Adapter& from, NodeId dst, Port port,
                        BytesView payload);
  void start_inquiry(Adapter& from, InquiryHandler done);
  void open_link(Adapter& from, NodeId dst, Port port, ConnectHandler done);
  void link_send(const std::shared_ptr<detail::LinkState>& state, NodeId sender,
                 BytesView payload);
  void link_close(const std::shared_ptr<detail::LinkState>& state, NodeId closer);
  void break_link(const std::shared_ptr<detail::LinkState>& state);
  void break_links_of(NodeId node, Technology tech);

  /// Balances the per-node open-link counts the moment `state` stops
  /// occupying radio capacity: close *initiation* (the old scan skipped
  /// `closing` links too) or break, whichever happens first.
  void unregister_link(const detail::LinkState& state);
  /// Records that a links_ entry went dead and compacts the vector once
  /// dead entries dominate — long soaks must not scan ever-growing state.
  void note_dead_link();
  void compact_links();

  /// Rebuilds `tech`'s grid if the world moved (new virtual timestamp) or
  /// its topology changed (adapter added, mobility swapped) since the last
  /// build. Positions are sampled through the position cache.
  void ensure_spatial(Technology tech) const;

  struct AccessPoint {
    NodeId node = kInvalidNode;
    double range_m = 0.0;
    bool active = true;
  };

  /// Registry handles for one technology's byte accounting
  /// (`net.tech.<name>.*`).
  struct TechCounters {
    obs::Counter* datagram_bytes = nullptr;
    obs::Counter* link_bytes = nullptr;
    obs::Counter* messages = nullptr;
  };

  /// Everything the proximity queries need about one technology, in
  /// structure-of-arrays form: parallel vectors sorted by node id
  /// (mirroring the old brute-force full-map scan order — order is what
  /// keeps RNG consumption identical), so the range-query hot loop walks
  /// two flat arrays (ids, powered bytes) instead of chasing adapter
  /// pointers. Power state is deliberately NOT an invalidation trigger —
  /// it is filtered at query time, exactly like the brute-force path.
  struct TechAdapters {
    std::vector<Adapter*> list;          // sorted by node id; never die
    std::vector<NodeId> ids;             // list[i]->node()
    std::vector<std::uint8_t> powered;   // list[i]->powered() mirror
    double max_range_m = 0.0;   // over non-gateway profiles; sizes cells
    SpatialGrid grid;
    /// Rebuild scratch, reused so a per-timestamp grid rebuild does not
    /// allocate.
    std::vector<sim::Vec2> positions;
    sim::Time built_at = 0;
    bool built = false;
    bool dirty = true;
  };

  /// Signal-memo key: the unordered endpoint pair (signal() is exactly
  /// symmetric, see the normalization comment in medium.cpp) plus every
  /// profile field the computation reads (range, tech, routing flags).
  /// Exact equality on all fields — hash collisions cannot alias two
  /// different evaluations.
  struct SignalKey {
    std::uint64_t pair = 0;        // (min << 32) | max
    std::uint64_t range_bits = 0;  // bit pattern of profile.range_m
    std::uint32_t flags = 0;       // tech + via_gateway + infrastructure
    bool operator==(const SignalKey&) const = default;
  };
  struct SignalKeyHash {
    std::size_t operator()(const SignalKey& k) const noexcept {
      std::uint64_t h = k.pair * 0x9E3779B97F4A7C15ull;
      h ^= k.range_bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      h ^= static_cast<std::uint64_t>(k.flags) + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  /// A cached position is valid only while its timestamp equals the
  /// current virtual time; this sentinel marks "never sampled".
  static constexpr sim::Time kPosNever = ~sim::Time{0};

  /// Updates the per-technology powered mirror (Adapter::set_powered).
  void note_adapter_power(const Adapter& adapter, bool on) noexcept;

  sim::Simulator& simulator_;
  sim::Rng rng_;
  MediumConfig config_;
  obs::Registry registry_;
  obs::Trace trace_;
  // Node state in structure-of-arrays form, indexed by NodeId (ids are
  // dense from 1; slot 0 is an unused placeholder). Grid rebuilds and the
  // signal memo walk flat arrays instead of chasing per-node map nodes.
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<sim::MobilityModel>> node_mobility_;
  /// adapter_lut_[node][tech]: O(1) adapter lookup on the signal hot path
  /// (the old per-call std::map::find dominated signal_physics).
  std::vector<std::array<Adapter*, 3>> adapter_lut_;
  std::vector<std::unique_ptr<Adapter>> adapter_own_;
  std::vector<AccessPoint> access_points_;
  // Query-path acceleration state; logically const (pure caches over the
  // node/adapter state), hence mutable for the const query methods.
  mutable std::array<TechAdapters, 3> tech_adapters_{};  // by Technology
  // Position memo as parallel arrays indexed by NodeId: timestamp of the
  // sample (kPosNever = invalid) and the sampled position.
  mutable std::vector<sim::Time> pos_cache_at_;
  mutable std::vector<sim::Vec2> pos_cache_;
  mutable std::vector<std::uint32_t> spatial_scratch_;
  // Per-timestamp signal memo: valid while (timestamp, epoch) both match;
  // clear() keeps bucket capacity so per-event resets are cheap.
  mutable std::unordered_map<SignalKey, double, SignalKeyHash> signal_memo_;
  mutable sim::Time signal_memo_at_ = 0;
  mutable std::uint64_t signal_memo_epoch_ = 0;
  std::uint64_t world_epoch_ = 1;
  std::vector<std::weak_ptr<detail::LinkState>> links_;
  /// open_link_counts_[node][tech] — flat, replacing the old map lookup.
  std::vector<std::array<std::uint32_t, 3>> open_link_counts_;
  std::size_t dead_links_ = 0;  // links_ entries closed since last compact
  /// Recycles frame payload buffers for datagram/link deliveries: the
  /// payload rides in a PooledBuffer inside the delivery closure and its
  /// storage returns to the pool when the event is destroyed.
  util::BufferPool frame_pool_;
  // Registry handles (`net.medium.*`); stable for the registry's lifetime.
  obs::Counter* c_datagrams_sent_ = nullptr;
  obs::Counter* c_datagrams_lost_ = nullptr;
  obs::Counter* c_link_messages_sent_ = nullptr;
  obs::Counter* c_link_bytes_sent_ = nullptr;
  obs::Counter* c_retransmissions_ = nullptr;
  obs::Counter* c_links_opened_ = nullptr;
  obs::Counter* c_links_broken_ = nullptr;
  obs::Counter* c_inquiries_ = nullptr;
  obs::Counter* c_links_compacted_ = nullptr;
  obs::Counter* c_signal_evals_ = nullptr;
  // `net.medium.spatial.*` / `net.medium.position_cache.*` — the
  // instruments the perf acceptance criteria read.
  obs::Counter* c_spatial_queries_ = nullptr;
  obs::Counter* c_spatial_rebuilds_ = nullptr;
  obs::Counter* c_spatial_cells_visited_ = nullptr;
  obs::Counter* c_spatial_candidates_ = nullptr;
  obs::Counter* c_spatial_pairs_pruned_ = nullptr;
  obs::Counter* c_position_hits_ = nullptr;
  obs::Counter* c_position_misses_ = nullptr;
  obs::Counter* c_signal_memo_hits_ = nullptr;
  obs::Histogram* h_transfer_us_ = nullptr;
  std::array<TechCounters, 3> tech_counters_{};  // indexed by Technology
  NodeId next_node_ = 1;
  FaultInjector* fault_ = nullptr;
};

}  // namespace ph::net
