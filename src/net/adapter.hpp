// Adapter — one radio of one technology on one device.
//
// A device in the thesis carries up to three radios (Bluetooth, WLAN, GPRS);
// each maps to one Adapter created through Medium::add_adapter. The adapter
// offers the three primitives the PeerHood plugins need:
//
//   * inquiry            — device discovery (Bluetooth inquiry scan, WLAN
//                          broadcast beacon round, GPRS gateway lookup)
//   * datagrams          — connectionless, *unreliable*, port-addressed
//                          messages (SDP-style service queries)
//   * connections        — reliable ordered Links (see link.hpp)
//
// Adapters are owned by the Medium and live as long as it does.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "net/link.hpp"
#include "net/tech.hpp"
#include "net/types.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::net {

class Medium;

using DatagramHandler = std::function<void(NodeId src, BytesView payload)>;
using InquiryHandler = std::function<void(std::vector<NodeId> found)>;
using AcceptHandler = std::function<void(Link link)>;
using ConnectHandler = std::function<void(Result<Link>)>;

class Adapter {
 public:
  Adapter(Medium& medium, NodeId node, TechProfile profile);
  Adapter(const Adapter&) = delete;
  Adapter& operator=(const Adapter&) = delete;

  NodeId node() const noexcept { return node_; }
  const TechProfile& profile() const noexcept { return profile_; }
  Technology technology() const noexcept { return profile_.tech; }

  /// Powered-off adapters neither send, receive, answer inquiries nor keep
  /// links alive (in-flight links break).
  void set_powered(bool on);
  bool powered() const noexcept { return powered_; }

  // --- device discovery ------------------------------------------------
  /// Starts a discovery scan; `done` fires after the profile's inquiry
  /// duration with the ids of powered same-technology neighbours found
  /// (each detected with the profile's detection probability).
  void start_inquiry(InquiryHandler done);

  // --- connectionless datagrams ----------------------------------------
  /// Binds a handler for datagrams addressed to `port`. One handler per
  /// port; rebinding replaces it.
  void bind(Port port, DatagramHandler handler);
  void unbind(Port port);

  /// Fire-and-forget message. Lost frames are dropped (no retransmission);
  /// callers requiring reliability retry with their own timeout, which is
  /// exactly what the PeerHood daemon's service queries do.
  void send_datagram(NodeId dst, Port port, BytesView payload);

  /// One-to-all datagram to every in-range peer bound on `port`. Only
  /// valid on technologies with `supports_broadcast` (WLAN); a no-op
  /// otherwise. Loss applies per receiver.
  void broadcast_datagram(Port port, BytesView payload);

  // --- connections ------------------------------------------------------
  /// Accepts incoming connections on `port`.
  void listen(Port port, AcceptHandler on_accept);
  void stop_listen(Port port);

  /// Initiates a connection to `dst`:`port`. Completes after the
  /// technology's connect latency with a Link, or with an error if the
  /// peer is unreachable, unpowered or not listening.
  void connect(NodeId dst, Port port, ConnectHandler done);

  /// Signal strength towards `dst` in [0,1]; 0 = out of range.
  double signal_to(NodeId dst) const;

 private:
  friend class Medium;

  Medium& medium_;
  NodeId node_;
  TechProfile profile_;
  bool powered_ = true;
  std::map<Port, DatagramHandler> datagram_handlers_;
  std::map<Port, AcceptHandler> listeners_;
  sim::Time tx_busy_until_ = 0;  // datagram serialization on this radio
  /// Index of this adapter in the Medium's per-technology SoA arrays
  /// (ids/powered/positions); maintained by Medium::add_adapter.
  std::size_t tech_index_ = 0;
};

}  // namespace ph::net
