// Wireless technology profiles.
//
// Chapter 2 of the thesis surveys Bluetooth, WLAN (802.11/a/b/g, Table 1)
// and GPRS; PeerHood has one plugin per technology. Each profile captures
// the first-order behaviour that drives the paper's results:
//   * range            — who is a neighbour (dynamic group membership)
//   * inquiry duration — how long device discovery takes (Bluetooth inquiry
//                        is famously ~10.24 s; WLAN broadcast discovery is
//                        sub-second; GPRS asks the operator gateway)
//   * bandwidth + base latency — how long each operation round trip takes
//   * loss/retransmission — jitter and failure injection
//
// Numbers follow the specifications the thesis itself cites: BT 2.0 EDR-less
// payload ~723 kbps / 10 m class-2 range; 802.11 family data rates from
// Table 1; GPRS 9.6–171 kbps overlay with high gateway RTT.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace ph::net {

enum class Technology { bluetooth, wlan, gprs };

std::string_view to_string(Technology tech) noexcept;

struct TechProfile {
  Technology tech = Technology::bluetooth;
  std::string name;                 ///< e.g. "Bluetooth 2.0", "IEEE 802.11b"
  double range_m = 10.0;            ///< radio range; ignored when via_gateway
  double bandwidth_bps = 723'000;   ///< payload data rate
  sim::Duration base_latency = sim::milliseconds(30);   ///< one-way per frame
  sim::Duration inquiry_duration = sim::seconds(10.24); ///< device discovery scan
  double inquiry_detect_prob = 1.0; ///< chance a neighbour answers one scan
  sim::Duration connect_latency = sim::milliseconds(640); ///< link setup (paging)
  double frame_loss = 0.0;          ///< chance a frame needs a retransmission
  sim::Duration retransmit_delay = sim::milliseconds(50); ///< cost per retry
  bool via_gateway = false;         ///< GPRS: routed through operator gateway
  sim::Duration gateway_latency = sim::milliseconds(0);   ///< extra hop latency
  /// Maximum concurrent links this radio can carry (0 = unlimited).
  /// Bluetooth piconets top out at 7 active slaves (thesis §2.4.1:
  /// "Bluetooth communication always exists in pairs ... the simplest
  /// Bluetooth network topology is a piconet").
  int max_links = 0;
  /// WLAN infrastructure mode (thesis §2.4.2): stations talk through an
  /// access point instead of directly. Reachability requires a common AP
  /// (Medium::add_access_point), effective station-to-station range grows
  /// to twice the radio range, and every frame pays the AP relay hop.
  bool infrastructure = false;
  sim::Duration ap_relay = sim::milliseconds(0);  ///< per-frame relay cost
  /// The radio can send one-to-all datagrams to everyone in range (the
  /// WLANPlugin "uses broadcast-based service discovery", thesis §4.2.3).
  /// Bluetooth and GPRS cannot.
  bool supports_broadcast = false;
};

/// Class-2 Bluetooth 2.0 as used in the thesis testbed (3COM dongles):
/// 10 m range, 723 kbps, 10.24 s inquiry, L2CAP-style reliable links.
TechProfile bluetooth_2_0();

/// Original IEEE 802.11 (Table 1 row 1): 2 Mbps in the 2.4 GHz band.
TechProfile wlan_80211();
/// IEEE 802.11a (Table 1): 54 Mbps at 5 GHz, relatively shorter range.
TechProfile wlan_80211a();
/// IEEE 802.11b (Table 1): 11 Mbps at 2.4 GHz, ~100 m outdoor range.
TechProfile wlan_80211b();
/// 802.11b in infrastructure mode (thesis §2.4.2): "inter-networking with
/// wired LAN is allowed ... and communication range is longer" — stations
/// associate with access points (Medium::add_access_point) instead of
/// talking directly.
TechProfile wlan_80211b_infrastructure();
/// IEEE 802.11g (Table 1): 54 Mbps at 2.4 GHz, 802.11b-compatible range.
TechProfile wlan_80211g();

/// GPRS overlay data service: ~40 kbps typical of the 9.6–171 kbps band the
/// thesis cites, high latency, every packet through the operator gateway.
TechProfile gprs();

}  // namespace ph::net
