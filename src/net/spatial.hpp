// SpatialGrid — a uniform-grid proximity index over node positions.
//
// The Medium's hot paths (inquiry fan-out, broadcast delivery, signal
// sampling) all ask the same question: "which nodes can possibly be within
// `radius` of this point right now?". Answering it by scanning the whole
// world is O(N) per query and O(N²) per discovery round — the exact cost
// the thesis' future-work item on crowd-scale dynamic group discovery
// worries about. The grid buckets positions into square cells of edge
// `cell_size_m` and answers a range query by visiting only the cells
// intersecting the query disk's bounding box, so a query touches O(k)
// candidates instead of N.
//
// The index is a *pure prune*: cells give a superset of the disk, then an
// exact distance test (the same correctly-rounded hypot the signal falloff
// uses, with the same strict `< radius` inequality) drops the corners — a
// node is returned iff the falloff at its distance would be nonzero. The
// caller still re-applies the full reachability predicate (power, fault
// attenuation). That is what keeps grid and brute-force results
// bit-identical — the equivalence the spatial property test asserts.
//
// Determinism: candidates are returned sorted by insertion index, so the
// caller's evaluation order — and therefore its RNG consumption — is
// independent of cell iteration order (which for an unordered_map is not
// stable across platforms).
//
// Rebuilds are O(N); the Medium rebuilds lazily, at most once per
// (virtual timestamp, topology change) per technology.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/world.hpp"

namespace ph::net {

class SpatialGrid {
 public:
  struct QueryStats {
    std::size_t cells_visited = 0;  ///< cell probes (hits and misses)
    std::size_t candidates = 0;     ///< indices appended to `out`
  };

  /// Replaces the index contents. `positions[i]` is the position of the
  /// caller's i-th entry (the Medium uses per-technology adapter indices);
  /// query() reports these indices back. `cell_size_m` must be positive.
  /// Copies into internal storage, reusing its capacity — rebuilds in a
  /// warmed-up world allocate nothing but hash-bucket churn.
  void rebuild(double cell_size_m, const std::vector<sim::Vec2>& positions);

  /// Appends to `out`, sorted ascending, the indices of every entry with
  /// distance(entry, center) < radius_m — strict, matching the falloff's
  /// "0 at/beyond range". A non-positive radius yields no candidates (a
  /// zero-range radio hears nobody, matching the exact predicate).
  QueryStats query(sim::Vec2 center, double radius_m,
                   std::vector<std::uint32_t>& out) const;

  std::size_t size() const noexcept { return positions_.size(); }
  double cell_size() const noexcept { return cell_size_; }

 private:
  static std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t cell_coord(double v) const noexcept;

  double cell_size_ = 1.0;
  std::vector<sim::Vec2> positions_;
  /// Cell → indices into positions_, each bucket in ascending index order
  /// (rebuild inserts in order).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace ph::net
