// FaultInjector — the Medium's hook for a deterministic fault plane.
//
// The Medium models a *healthy* radio world: steady-state frame loss and
// range-driven disconnects. Everything nastier — burst loss, latency
// spikes, signal fades, outages — is injected from outside through this
// interface so that `ph_net` stays free of fault-scenario policy and the
// fault plane (src/fault/) stays free of delivery mechanics.
//
// All hooks are consulted on the simulator's virtual-time axis and must be
// deterministic functions of (virtual time, injected RNG state): with no
// injector installed the Medium behaves bit-for-bit as before, and with
// one installed the same seed must replay the same faults.
#pragma once

#include "net/tech.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace ph::net {

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Effective per-frame loss probability for one transmission attempt.
  /// `base` is the technology profile's steady-state `frame_loss`; the
  /// injector may raise it (burst-loss windows). Called once per frame
  /// attempt, so stateful loss models (Gilbert–Elliott) advance here.
  virtual double frame_loss(Technology tech, double base) {
    (void)tech;
    return base;
  }

  /// Additional one-way propagation delay for frames of `tech` right now
  /// (latency-spike windows). Zero outside fault windows.
  virtual sim::Duration extra_latency(Technology tech) {
    (void)tech;
    return 0;
  }

  /// Multiplier in [0,1] applied to the physical signal between two nodes
  /// (signal-degradation ramps). 1.0 outside fault windows.
  virtual double signal_factor(NodeId a, NodeId b) const {
    (void)a;
    (void)b;
    return 1.0;
  }
};

}  // namespace ph::net
