// Link — a connection-oriented, ordered, reliable byte-message channel
// between two adapters of the same technology (the simulator's analogue of
// an L2CAP channel / TCP connection).
//
// Reliability is per-technology: frame loss turns into retransmission delay,
// matching the thesis' description of the BTPlugin ("offers ordered and
// reliable data delivery"). What a Link cannot survive is the peer moving
// out of radio range — then the link *breaks* and both sides get their
// break handler invoked. Seamless connectivity across technologies is the
// PeerHood layer's job, built on top of these per-technology links.
//
// Link is a value handle (shared state internally); copying it refers to
// the same endpoint.
#pragma once

#include <functional>
#include <memory>

#include "net/tech.hpp"
#include "net/types.hpp"
#include "util/bytes.hpp"

namespace ph::net {

class Medium;

namespace detail {
struct LinkState;
}

class Link {
 public:
  /// An empty (never-connected) handle; valid() is false.
  Link() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  /// True while data can still be sent (not closed, not broken).
  bool open() const noexcept;

  NodeId local_node() const noexcept { return self_; }
  NodeId remote_node() const noexcept;
  Technology technology() const noexcept;

  /// Handler for message payloads arriving from the peer. Messages are
  /// delivered in send order, exactly once, while the link is open.
  void on_receive(std::function<void(BytesView)> handler);

  /// Handler invoked once when the link terminates for any reason other
  /// than a local close(): peer closed, peer moved out of range, or the
  /// local/remote adapter was powered off.
  void on_break(std::function<void()> handler);

  /// Queues a message to the peer. Delivery time accounts for bandwidth
  /// serialization, propagation latency and (randomized) retransmissions.
  /// Silently discarded if the link is no longer open.
  void send(BytesView payload);

  /// Current signal strength towards the peer in [0,1]; 0 means out of
  /// range. Gateway-routed technologies always report 1 while powered.
  double signal() const;

  /// Graceful local close; the peer observes a break shortly afterwards.
  /// Safe to call repeatedly.
  void close();

  /// Two handles are equal when they refer to the same underlying link.
  friend bool operator==(const Link& a, const Link& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  friend class Medium;
  friend class Adapter;
  Link(std::shared_ptr<detail::LinkState> state, NodeId self)
      : state_(std::move(state)), self_(self) {}

  std::shared_ptr<detail::LinkState> state_;
  NodeId self_ = kInvalidNode;
};

}  // namespace ph::net
