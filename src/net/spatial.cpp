#include "net/spatial.hpp"

#include <algorithm>
#include <cmath>

namespace ph::net {

std::int32_t SpatialGrid::cell_coord(double v) const noexcept {
  return static_cast<std::int32_t>(std::floor(v / cell_size_));
}

void SpatialGrid::rebuild(double cell_size_m,
                          const std::vector<sim::Vec2>& positions) {
  cell_size_ = cell_size_m > 0.0 ? cell_size_m : 1.0;
  positions_.assign(positions.begin(), positions.end());
  cells_.clear();
  cells_.reserve(positions_.size());
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    const sim::Vec2& p = positions_[i];
    cells_[cell_key(cell_coord(p.x), cell_coord(p.y))].push_back(i);
  }
}

SpatialGrid::QueryStats SpatialGrid::query(
    sim::Vec2 center, double radius_m, std::vector<std::uint32_t>& out) const {
  QueryStats stats;
  if (radius_m <= 0.0 || positions_.empty()) return stats;
  const std::size_t first = out.size();
  const std::int32_t cx0 = cell_coord(center.x - radius_m);
  const std::int32_t cx1 = cell_coord(center.x + radius_m);
  const std::int32_t cy0 = cell_coord(center.y - radius_m);
  const std::int32_t cy1 = cell_coord(center.y + radius_m);
  for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
      ++stats.cells_visited;
      auto it = cells_.find(cell_key(cx, cy));
      if (it == cells_.end()) continue;
      for (std::uint32_t index : it->second) {
        // Exact-distance filter, with the same correctly-rounded hypot the
        // signal falloff uses (`distance >= range` ⇒ signal 0), so pruning
        // here can never disagree with the brute-force predicate.
        if (sim::distance(positions_[index], center) < radius_m) {
          out.push_back(index);
        }
      }
    }
  }
  // Cell iteration order depends on the coordinate walk, not on hash
  // layout, but candidates from different cells interleave — sort so the
  // caller evaluates (and consumes RNG) in one canonical order.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
  stats.candidates = out.size() - first;
  return stats;
}

}  // namespace ph::net
