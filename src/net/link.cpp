#include "net/link.hpp"

#include "net/link_state.hpp"
#include "net/medium.hpp"

namespace ph::net {

bool Link::open() const noexcept {
  return state_ && state_->open && !state_->closing;
}

NodeId Link::remote_node() const noexcept {
  return state_ ? state_->peer_of(self_) : kInvalidNode;
}

Technology Link::technology() const noexcept {
  return state_ ? state_->profile.tech : Technology::bluetooth;
}

void Link::on_receive(std::function<void(BytesView)> handler) {
  if (state_) state_->rx_for(self_) = std::move(handler);
}

void Link::on_break(std::function<void()> handler) {
  if (state_) state_->brk_for(self_) = std::move(handler);
}

void Link::send(BytesView payload) {
  if (!open()) return;
  state_->medium->link_send(state_, self_, payload);
}

double Link::signal() const {
  if (!open()) return 0.0;
  return state_->medium->signal(state_->a, state_->b, state_->profile);
}

void Link::close() {
  if (!open()) return;
  state_->medium->link_close(state_, self_);
}

}  // namespace ph::net
