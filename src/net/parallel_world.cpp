#include "net/parallel_world.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace ph::net {
namespace {

constexpr std::uint32_t kPingBytes = 32;
constexpr std::uint32_t kAckBytes = 128;

/// overlay_scale's constant-density convention: 60 m field for 40 devices.
double field_for(std::uint32_t devices) {
  return 60.0 * std::sqrt(static_cast<double>(devices) / 40.0);
}

}  // namespace

ParallelWorld::ParallelWorld(ParallelWorldConfig config)
    : config_(config),
      field_m_(config.field_m > 0.0 ? config.field_m
                                    : field_for(config.devices)),
      kernel_(sim::ParallelConfig{config.shards, config.threads,
                                  config.base_latency,
                                  config.wall_sampler}) {
  PH_CHECK(config_.devices >= 1);
  if (config_.profile) kernel_.enable_profiling(config_.profile_wall);
  PH_CHECK(config_.range_m > 0.0 && config_.bits_per_second > 0.0);
  PH_CHECK(config_.scan_interval >= 1);
  strip_w_ = field_m_ / kernel_.shards();
  refresh_windows_ =
      std::max<std::uint64_t>(1, (config_.refresh + kernel_.lookahead() - 1) /
                                     kernel_.lookahead());

  const std::uint32_t n = config_.devices;
  devices_.resize(n);
  positions_.resize(n);
  owner_.resize(n);
  shards_.reserve(kernel_.shards());
  for (unsigned s = 0; s < kernel_.shards(); ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }

  // Seed every device's streams from one master sequence, by device id —
  // streams are a function of (seed, id) alone, never of shard or thread.
  sim::SmallRng seeder(config_.seed);
  for (std::uint32_t d = 0; d < n; ++d) {
    Device& dev = devices_[d];
    dev.walker.rng = sim::SmallRng(seeder.next_u64());
    dev.rng = sim::SmallRng(seeder.next_u64());
    dev.walker.from = {dev.walker.rng.uniform(0.0, field_m_),
                       dev.walker.rng.uniform(0.0, field_m_)};
    dev.walker.to = dev.walker.from;
    positions_[d] = dev.walker.from;
    const unsigned s = strip_of(positions_[d]);
    owner_[d] = s;
    shards_[s]->owned.push_back(d);
  }
  for (unsigned s = 0; s < kernel_.shards(); ++s) rebuild_grid(s);

  // First scans spread uniformly over one interval; scheduled in device
  // order so per-shard event ids are a function of the seed alone.
  const obs::prof::TagScope scan_tag(obs::prof::Center::world_scan);
  for (std::uint32_t d = 0; d < n; ++d) {
    Device& dev = devices_[d];
    dev.next_scan = dev.rng.uniform_int(config_.scan_interval);
    dev.scan_event = kernel_.shard(owner_[d]).schedule_at(
        dev.next_scan, [this, d] { run_scan(d); });
  }

  if (config_.sample_interval_us > 0) {
    obs::SamplerConfig sampler_config;
    sampler_config.interval_us = config_.sample_interval_us;
    sampler_ = std::make_unique<obs::Sampler>(registry_, sampler_config);
    next_sample_at_ = config_.sample_interval_us;
  }
  kernel_.set_barrier_hook([this](sim::Time now) { on_barrier(now); });
}

void ParallelWorld::run_for(sim::Duration d) {
  kernel_.run_until(kernel_.window_start() + d);
  // run_until's final barrier already ran the hook; force one last publish
  // in case the refresh cadence didn't land on the final window.
  publish_metrics();
}

unsigned ParallelWorld::strip_of(sim::Vec2 pos) const {
  if (pos.x <= 0.0) return 0;
  const auto s = static_cast<unsigned>(pos.x / strip_w_);
  return std::min(s, kernel_.shards() - 1);
}

bool ParallelWorld::in_outage(std::uint32_t device, sim::Time t) const {
  if (config_.outage_fraction <= 0.0) return false;
  const std::uint64_t wave = t / config_.outage_period;
  if (t - wave * config_.outage_period >= config_.outage_duration) {
    return false;
  }
  // Pure hash of (seed, wave, device): no stream consumed, so outage
  // membership is independent of sharding, threading and event order.
  const std::uint64_t h =
      sim::hash_mix(sim::hash_mix(config_.seed ^ wave) ^ device);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < config_.outage_fraction;
}

sim::Duration ParallelWorld::transfer_time(std::uint32_t bytes) const {
  const double us = static_cast<double>(bytes) * 8.0 * 1'000'000.0 /
                    config_.bits_per_second;
  return config_.base_latency + static_cast<sim::Duration>(us);
}

sim::Vec2 ParallelWorld::walker_position(Walker& w, sim::Time t) const {
  for (;;) {
    if (t <= w.depart) return w.from;  // dwelling at `from`
    if (t < w.arrive) {
      const double frac = static_cast<double>(t - w.depart) /
                          static_cast<double>(w.arrive - w.depart);
      return w.from + (w.to - w.from) * frac;
    }
    // Leg complete: dwell at the waypoint, then pick the next one.
    w.from = w.to;
    w.depart = w.arrive + config_.pause;
    w.to = {w.rng.uniform(0.0, field_m_), w.rng.uniform(0.0, field_m_)};
    const double speed =
        w.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
    const double dist = sim::distance(w.from, w.to);
    const auto travel = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(dist / speed * 1'000'000.0));
    w.arrive = w.depart + travel;
  }
}

void ParallelWorld::run_scan(std::uint32_t device) {
  const unsigned s = owner_[device];
  Shard& sh = *shards_[s];
  Device& dev = devices_[device];
  const sim::Time now = kernel_.shard(s).now();
  ++sh.c.scans;

  if (in_outage(device, now)) {
    // Radio dark: the whole neighbour table ages out.
    sh.c.losses += dev.neighbours.size();
    dev.neighbours.clear();
  } else {
    sh.query_scratch.clear();
    sh.grid.query(positions_[device], config_.range_m, sh.query_scratch);
    sh.found_scratch.clear();
    for (const std::uint32_t idx : sh.query_scratch) {
      const std::uint32_t peer = sh.candidates[idx];
      if (peer == device) continue;
      if (in_outage(peer, now)) continue;
      sh.found_scratch.push_back(peer);
    }
    std::sort(sh.found_scratch.begin(), sh.found_scratch.end());

    // Sorted diff against the previous table: discoveries and losses.
    {
      auto old_it = dev.neighbours.begin();
      const auto old_end = dev.neighbours.end();
      auto new_it = sh.found_scratch.begin();
      const auto new_end = sh.found_scratch.end();
      while (old_it != old_end || new_it != new_end) {
        if (new_it == new_end || (old_it != old_end && *old_it < *new_it)) {
          ++sh.c.losses;
          ++old_it;
        } else if (old_it == old_end || *new_it < *old_it) {
          ++sh.c.discoveries;
          ++new_it;
        } else {
          ++old_it;
          ++new_it;
        }
      }
    }
    dev.neighbours.assign(sh.found_scratch.begin(), sh.found_scratch.end());

    // One keep-alive ping per neighbour (the PeerHood monitoring loop).
    for (const std::uint32_t peer : dev.neighbours) {
      ++sh.c.pings_sent;
      sh.c.bytes_sent += kPingBytes;
      if (dev.rng.chance(config_.frame_loss)) {
        ++sh.c.pings_lost;
        continue;
      }
      send_frame(s, Frame{Frame::Kind::kPing, device, peer, 0},
                 now + transfer_time(kPingBytes));
    }

    if (!dev.neighbours.empty() && dev.rng.chance(config_.op_probability)) {
      start_op(s, device, now);
    }
  }

  const sim::Duration jitter =
      config_.scan_jitter > 0 ? dev.rng.uniform_int(config_.scan_jitter) : 0;
  dev.next_scan = now + config_.scan_interval + jitter;
  const obs::prof::TagScope scan_tag(obs::prof::Center::world_scan);
  dev.scan_event = kernel_.shard(s).schedule_at(dev.next_scan,
                                                [this, device] {
                                                  run_scan(device);
                                                });
}

void ParallelWorld::start_op(unsigned s, std::uint32_t device, sim::Time now) {
  Shard& sh = *shards_[s];
  Device& dev = devices_[device];
  const std::uint32_t peer =
      dev.neighbours[dev.rng.uniform_int(dev.neighbours.size())];
  ++sh.c.ops_started;
  sh.c.bytes_sent += config_.op_bytes;
  if (dev.rng.chance(config_.frame_loss)) {
    ++sh.c.ops_dropped;
    return;
  }
  send_frame(s, Frame{Frame::Kind::kOpRequest, device, peer, now},
             now + transfer_time(config_.op_bytes));
}

sim::EventFn ParallelWorld::frame_event(Frame f, unsigned expect_shard) {
  return sim::EventFn([this, f, expect_shard] {
    const unsigned cur = owner_[f.to];
    if (cur != expect_shard) {
      // The device migrated after this frame was scheduled: forward to the
      // new owner at the earliest causally safe time (post() clamps to the
      // next window — the migration equivalent of a handoff delay).
      ++shards_[expect_shard]->c.forwards;
      kernel_.post(expect_shard, cur, kernel_.shard(expect_shard).now(),
                   frame_event(f, cur));
      return;
    }
    handle_frame(f, cur, kernel_.shard(cur).now());
  });
}

void ParallelWorld::send_frame(unsigned src_shard, Frame f, sim::Time when) {
  const unsigned dst = owner_[f.to];
  const obs::prof::TagScope frame_tag(obs::prof::Center::world_frame);
  if (dst == src_shard) {
    kernel_.shard(src_shard).schedule_at(when, frame_event(f, dst));
  } else {
    kernel_.post(src_shard, dst, when, frame_event(f, dst));
  }
}

void ParallelWorld::handle_frame(const Frame& f, unsigned s, sim::Time now) {
  Shard& sh = *shards_[s];
  if (in_outage(f.to, now)) {
    ++sh.c.outage_drops;
    if (f.kind != Frame::Kind::kPing) ++sh.c.ops_dropped;
    return;
  }
  switch (f.kind) {
    case Frame::Kind::kPing:
      ++sh.c.pings_received;
      break;
    case Frame::Kind::kOpRequest: {
      Device& responder = devices_[f.to];
      sh.c.bytes_sent += kAckBytes;
      if (responder.rng.chance(config_.frame_loss)) {
        ++sh.c.ops_dropped;
        break;
      }
      send_frame(s, Frame{Frame::Kind::kOpAck, f.to, f.from, f.op_start},
                 now + transfer_time(kAckBytes));
      break;
    }
    case Frame::Kind::kOpAck:
      ++sh.c.ops_completed;
      sh.latency_scratch.push_back(static_cast<double>(now - f.op_start));
      break;
  }
}

void ParallelWorld::on_barrier(sim::Time now) {
  ++windows_since_refresh_;
  if (windows_since_refresh_ < refresh_windows_) return;
  windows_since_refresh_ = 0;
  refresh(now);
}

void ParallelWorld::refresh(sim::Time now) {
  // Parallel over shards: each samples mobility for its own devices only
  // (the walkers are owner-exclusive state).
  kernel_.for_each_shard([this, now](unsigned s) {
    for (const std::uint32_t d : shards_[s]->owned) {
      positions_[d] = walker_position(devices_[d].walker, now);
    }
  });
  migrate(now);
  // Parallel again: grids read the (now settled) snapshot + owner lists.
  kernel_.for_each_shard([this](unsigned s) { rebuild_grid(s); });

  publish_metrics();

  if (config_.outage_fraction > 0.0) {
    const std::uint64_t wave = now / config_.outage_period;
    if (wave != last_wave_) {
      last_wave_ = wave;
      trace_.add_event("world.outage_wave", now, wave);
    }
  }
  if (sampler_ && now >= next_sample_at_) {
    sampler_->sample(now);
    next_sample_at_ = now + config_.sample_interval_us;
  }
  if (poll_) poll_();
}

void ParallelWorld::migrate(sim::Time now) {
  // Single-threaded (barrier hook): move devices whose position crossed a
  // strip edge. Deterministic — depends only on the position snapshot and
  // the owned-list order, both functions of the seed.
  for (unsigned s = 0; s < kernel_.shards(); ++s) {
    std::vector<std::uint32_t>& owned = shards_[s]->owned;
    for (std::size_t i = 0; i < owned.size();) {
      const std::uint32_t d = owned[i];
      const unsigned ns = strip_of(positions_[d]);
      if (ns == s) {
        ++i;
        continue;
      }
      owned[i] = owned.back();
      owned.pop_back();
      shards_[ns]->owned.push_back(d);
      owner_[d] = ns;
      Device& dev = devices_[d];
      kernel_.shard(s).cancel(dev.scan_event);
      // next_scan is at least one scan interval past its last firing, so
      // it is always >= now here (refresh cadence << scan interval).
      const obs::prof::TagScope scan_tag(obs::prof::Center::world_scan);
      dev.scan_event = kernel_.shard(ns).schedule_at(
          std::max(dev.next_scan, now), [this, d] { run_scan(d); });
      ++migrations_;
    }
  }
}

void ParallelWorld::rebuild_grid(unsigned s) {
  Shard& sh = *shards_[s];
  sh.candidates.clear();
  sh.cand_pos.clear();
  sh.candidates.insert(sh.candidates.end(), sh.owned.begin(), sh.owned.end());
  // Halo: adjacent-strip devices within radio range of this strip's edges.
  // Reading neighbours' owned lists is safe — migration has settled and
  // rebuilds only write their own shard.
  const double lo = static_cast<double>(s) * strip_w_;
  const double hi = lo + strip_w_;
  if (s > 0) {
    for (const std::uint32_t d : shards_[s - 1]->owned) {
      if (positions_[d].x >= lo - config_.range_m) sh.candidates.push_back(d);
    }
  }
  if (s + 1 < kernel_.shards()) {
    for (const std::uint32_t d : shards_[s + 1]->owned) {
      if (positions_[d].x <= hi + config_.range_m) sh.candidates.push_back(d);
    }
  }
  sh.cand_pos.reserve(sh.candidates.size());
  for (const std::uint32_t d : sh.candidates) {
    sh.cand_pos.push_back(positions_[d]);
  }
  sh.grid.rebuild(config_.range_m, sh.cand_pos);
}

void ParallelWorld::publish_metrics() {
  struct Field {
    const char* name;
    std::uint64_t Counters::*member;
  };
  static constexpr Field kFields[] = {
      {"world.scans", &Counters::scans},
      {"world.discoveries", &Counters::discoveries},
      {"world.losses", &Counters::losses},
      {"world.pings_sent", &Counters::pings_sent},
      {"world.pings_received", &Counters::pings_received},
      {"world.pings_lost", &Counters::pings_lost},
      {"world.outage_drops", &Counters::outage_drops},
      {"world.ops_started", &Counters::ops_started},
      {"world.ops_completed", &Counters::ops_completed},
      {"world.ops_dropped", &Counters::ops_dropped},
      {"world.forwards", &Counters::forwards},
      {"world.bytes_sent", &Counters::bytes_sent},
  };
  for (const Field& f : kFields) {
    std::uint64_t total = 0;
    for (const auto& sh : shards_) total += sh->c.*f.member;
    obs::Counter& counter = registry_.counter(f.name);
    counter.inc(total - world_prev_.*f.member);
    world_prev_.*f.member = total;
  }
  registry_.counter("world.migrations").inc(migrations_ - prev_migrations_);
  prev_migrations_ = migrations_;
  registry_.gauge("world.devices")
      .set(static_cast<double>(config_.devices));
  registry_.gauge("sim.windows")
      .set(static_cast<double>(kernel_.windows_run()));

  // Per-shard kernel stats: the balance view the ops plane reads live.
  std::uint64_t stall_total = 0;
  for (unsigned s = 0; s < kernel_.shards(); ++s) {
    Shard& sh = *shards_[s];
    const sim::ShardedKernel::ShardStats stats = kernel_.shard_stats(s);
    const std::string prefix = "sim.shard." + std::to_string(s) + ".";
    registry_.counter(prefix + "events").inc(stats.executed - sh.prev_events);
    sh.prev_events = stats.executed;
    registry_.counter(prefix + "cross_sent")
        .inc(stats.cross_sent - sh.prev_cross_sent);
    sh.prev_cross_sent = stats.cross_sent;
    registry_.counter(prefix + "cross_received")
        .inc(stats.cross_received - sh.prev_cross_received);
    sh.prev_cross_received = stats.cross_received;
    registry_.gauge(prefix + "cancelled_live")
        .set(static_cast<double>(stats.cancelled_live));
    stall_total += stats.stall_wall_us;
    if (config_.publish_wall_stats) {
      registry_.gauge(prefix + "lookahead_stalls_us")
          .set(static_cast<double>(stats.stall_wall_us));
    }
  }
  // The per-shard-summed reading: each shard's queue keeps its own count;
  // a single shared gauge would race (and double-count) under threads.
  registry_.gauge("sim.queue.cancelled_live")
      .set(static_cast<double>(kernel_.cancelled_live_total()));
  if (config_.publish_wall_stats) {
    registry_.gauge("sim.shard.lookahead_stalls_us")
        .set(static_cast<double>(stall_total));
  }

  obs::Histogram& latency = registry_.histogram("world.op_latency_us");
  for (const auto& sh : shards_) {
    for (const double v : sh->latency_scratch) latency.observe(v);
    sh->latency_scratch.clear();
  }

  // Cost attribution (obs::prof Mode 1). Per-shard dispatch counts are
  // deterministic, so the summed `prof.<center>.events` deltas belong in
  // byte-compared dumps; wall histograms follow the publish_wall_stats
  // rule instead.
  if (config_.profile) {
    for (unsigned s = 0; s < kernel_.shards(); ++s) {
      kernel_.shard_profiler(s)->publish_events(registry_);
    }
    if (config_.profile_wall) {
      for (unsigned s = 0; s < kernel_.shards(); ++s) {
        kernel_.shard_profiler(s)->publish_wall(registry_);
      }
    }
  }
}

ParallelWorld::Totals ParallelWorld::totals() const {
  Totals t;
  for (const auto& sh : shards_) {
    t.scans += sh->c.scans;
    t.discoveries += sh->c.discoveries;
    t.losses += sh->c.losses;
    t.pings_sent += sh->c.pings_sent;
    t.pings_received += sh->c.pings_received;
    t.pings_lost += sh->c.pings_lost;
    t.outage_drops += sh->c.outage_drops;
    t.ops_started += sh->c.ops_started;
    t.ops_completed += sh->c.ops_completed;
    t.ops_dropped += sh->c.ops_dropped;
    t.forwards += sh->c.forwards;
    t.bytes_sent += sh->c.bytes_sent;
  }
  t.migrations = migrations_;
  t.events = kernel_.events_executed();
  t.windows = kernel_.windows_run();
  t.cancelled_live = kernel_.cancelled_live_total();
  for (unsigned s = 0; s < kernel_.shards(); ++s) {
    const sim::ShardedKernel::ShardStats stats = kernel_.shard_stats(s);
    t.cross_sent += stats.cross_sent;
    t.cross_clamped += stats.cross_clamped;
  }
  return t;
}

}  // namespace ph::net
