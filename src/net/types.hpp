// Shared identifiers for the simulated radio environment.
#pragma once

#include <cstdint>

namespace ph::net {

/// Identifies a physical device in the simulated world. In the real system
/// this role is played by technology addresses (Bluetooth BD_ADDR, IP); the
/// simulator uses one id per device and per-technology adapters under it.
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = 0;

/// Demultiplexing point within an adapter, like an L2CAP PSM or UDP port.
using Port = std::uint16_t;

/// Well-known port of the PeerHood daemon's control endpoint (device and
/// service queries). Application services bind ports above 1000.
constexpr Port kDaemonPort = 1;

}  // namespace ph::net
