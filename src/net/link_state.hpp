// Internal shared state of a Link (both endpoints reference one LinkState).
// Private to the ph_net implementation; applications use net/link.hpp.
#pragma once

#include <functional>

#include "net/tech.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"

namespace ph::net {
class Medium;
}

namespace ph::net::detail {

struct LinkState {
  Medium* medium = nullptr;
  TechProfile profile;  // initiator's profile governs the link's physics
  NodeId a = kInvalidNode;  // initiator
  NodeId b = kInvalidNode;  // acceptor
  Port port = 0;
  bool open = false;
  /// Graceful close in progress: new sends are rejected, queued messages
  /// still drain to the peer before the link actually dies.
  bool closing = false;

  std::function<void(BytesView)> rx_a, rx_b;  // receive handler per side
  std::function<void()> brk_a, brk_b;         // break handler per side

  sim::Time busy_a_to_b = 0;  // serialization horizon, a->b direction
  sim::Time busy_b_to_a = 0;

  std::function<void(BytesView)>& rx_for(NodeId side) { return side == a ? rx_a : rx_b; }
  std::function<void()>& brk_for(NodeId side) { return side == a ? brk_a : brk_b; }
  NodeId peer_of(NodeId side) const { return side == a ? b : a; }
};

}  // namespace ph::net::detail
