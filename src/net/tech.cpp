#include "net/tech.hpp"

namespace ph::net {

std::string_view to_string(Technology tech) noexcept {
  switch (tech) {
    case Technology::bluetooth: return "bluetooth";
    case Technology::wlan: return "wlan";
    case Technology::gprs: return "gprs";
  }
  return "?";
}

TechProfile bluetooth_2_0() {
  TechProfile p;
  p.tech = Technology::bluetooth;
  p.name = "Bluetooth 2.0";
  p.range_m = 10.0;
  p.bandwidth_bps = 723'000;
  p.base_latency = sim::milliseconds(30);
  p.inquiry_duration = sim::seconds(10.24);
  p.inquiry_detect_prob = 0.99;
  p.connect_latency = sim::milliseconds(640);
  p.frame_loss = 0.01;
  p.retransmit_delay = sim::milliseconds(50);
  p.max_links = 7;  // piconet: one master, up to 7 active slaves
  return p;
}

namespace {
TechProfile wlan_base() {
  TechProfile p;
  p.tech = Technology::wlan;
  p.range_m = 100.0;
  p.base_latency = sim::milliseconds(5);
  // Broadcast-based service discovery (thesis §4.2.3): a beacon round,
  // not a Bluetooth-style inquiry scan.
  p.inquiry_duration = sim::milliseconds(500);
  p.inquiry_detect_prob = 1.0;
  p.connect_latency = sim::milliseconds(50);
  p.frame_loss = 0.005;
  p.retransmit_delay = sim::milliseconds(10);
  p.supports_broadcast = true;
  return p;
}
}  // namespace

TechProfile wlan_80211() {
  TechProfile p = wlan_base();
  p.name = "IEEE 802.11";
  p.bandwidth_bps = 2'000'000;
  return p;
}

TechProfile wlan_80211a() {
  TechProfile p = wlan_base();
  p.name = "IEEE 802.11a";
  p.bandwidth_bps = 54'000'000;
  p.range_m = 50.0;  // "relatively shorter range than 802.11b" (Table 1)
  return p;
}

TechProfile wlan_80211b() {
  TechProfile p = wlan_base();
  p.name = "IEEE 802.11b";
  p.bandwidth_bps = 11'000'000;
  return p;
}

TechProfile wlan_80211b_infrastructure() {
  TechProfile p = wlan_80211b();
  p.name = "IEEE 802.11b (infrastructure)";
  p.infrastructure = true;
  p.ap_relay = sim::milliseconds(2);
  return p;
}

TechProfile wlan_80211g() {
  TechProfile p = wlan_base();
  p.name = "IEEE 802.11g";
  p.bandwidth_bps = 54'000'000;
  return p;
}

TechProfile gprs() {
  TechProfile p;
  p.tech = Technology::gprs;
  p.name = "GPRS";
  p.range_m = 0.0;  // unused: cellular coverage is assumed ubiquitous
  p.bandwidth_bps = 40'000;
  p.base_latency = sim::milliseconds(300);
  p.inquiry_duration = sim::seconds(1.0);  // proxy/gateway presence lookup
  p.inquiry_detect_prob = 1.0;
  p.connect_latency = sim::milliseconds(900);
  p.frame_loss = 0.02;
  p.retransmit_delay = sim::milliseconds(300);
  p.via_gateway = true;
  p.gateway_latency = sim::milliseconds(250);
  return p;
}

}  // namespace ph::net
