// GroupEngine — dynamic group discovery (thesis Figures 2, 5 and 6).
//
// "The technology involved discovers the nearby users and the intelligence
// of the application quickly scans the newly found neighbors' interests and
// matches with the primary user's personal interests and dynamically forms
// the group on the move."
//
// The engine is the event-driven form of the Figure 6 algorithm: instead of
// re-running "for every interest × every neighbour" from scratch, it reacts
// to the events PeerHood monitoring already produces —
//
//   on_peer(member, interests)   — a neighbour appeared / changed interests
//   remove_peer(member)          — a neighbour left radio range
//   set_local_interests(...)     — the user edited their interest list
//
// — and keeps one group per *canonical* interest of the local user (plus
// manually joined ones). The full-rescan variant from the figure is also
// provided (rescan()) so benches can compare the two (DESIGN.md ablation 2).
//
// Interest matching goes through a SemanticDictionary, so taught synonyms
// ("biking" == "cycling") merge into one group — with an untaught
// dictionary the engine reproduces the thesis' limitation of two separate
// groups, which bench_ablation_semantics measures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "community/interests.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/result.hpp"

namespace ph::community {

/// One dynamically formed interest group, as seen from the local device.
struct Group {
  /// Canonical interest key (dictionary representative).
  std::string interest;
  /// Raw labels observed mapping to this group ("biking", "Cycling").
  std::set<std::string> labels;
  /// Member ids, including the local user.
  std::set<std::string> members;
  /// True once at least one remote member matched (thesis: a group "forms"
  /// when interests match between two users).
  bool formed() const { return members.size() >= 2; }
};

/// Notifications the application can subscribe to.
struct GroupCallbacks {
  std::function<void(const Group&)> on_group_formed;
  std::function<void(const std::string& interest)> on_group_dissolved;
  std::function<void(const std::string& interest, const std::string& member)>
      on_member_joined;
  std::function<void(const std::string& interest, const std::string& member)>
      on_member_left;
};

class GroupEngine {
 public:
  /// `dictionary` may outlive or be shared with the app; not owned.
  /// `registry` is where the engine publishes its counters (prefixed with
  /// `metric_prefix`, default `community.groups.`); the engine has no
  /// medium access, so the caller wires it — CommunityApp passes the
  /// world's registry at login. With no registry the engine falls back to
  /// a private one, so counters are always registry-backed.
  GroupEngine(std::string local_member, const SemanticDictionary& dictionary,
              obs::Registry* registry = nullptr,
              std::string metric_prefix = "community.groups.");

  void set_callbacks(GroupCallbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Optional trace hook: group formation/dissolution become instant trace
  /// events (`community.group.formed` / `community.group.dissolved`) on
  /// `device`'s track. The engine has no simulator access, so the caller
  /// supplies the virtual clock — CommunityApp wires this at login. A null
  /// `trace` disables. Separate from GroupCallbacks so tests replacing the
  /// callbacks don't silently lose the instrumentation.
  void set_trace(obs::Trace* trace, std::uint64_t device,
                 std::function<obs::TimePoint()> clock) {
    trace_ = trace;
    trace_device_ = device;
    trace_clock_ = std::move(clock);
  }

  const std::string& local_member() const noexcept { return local_member_; }

  // --- inputs -------------------------------------------------------------
  /// Replaces the local user's interest list (raw labels).
  void set_local_interests(const std::vector<std::string>& interests);

  /// A neighbour's interests became known or changed (raw labels).
  void on_peer(const std::string& member, const std::vector<std::string>& interests);

  /// A neighbour left the neighbourhood: drop it from every group
  /// ("automatically the remote device gets excluded from the social
  /// network", thesis §5.1).
  void remove_peer(const std::string& member);

  /// Manually joins a group for an interest the user does not hold
  /// (Table 7 "Join/Leave Manually"). The group then behaves like a local
  /// interest until left.
  void manual_join(std::string_view interest);
  Result<void> manual_leave(std::string_view interest);

  /// The dictionary changed (new synonyms taught): recompute all groups.
  void rebuild();

  // --- queries ------------------------------------------------------------
  /// All tracked groups, sorted by canonical interest.
  std::vector<Group> groups() const;
  /// Only groups with at least one remote member.
  std::vector<Group> formed_groups() const;
  Result<Group> group(std::string_view interest) const;
  /// Members of one interest group (empty for unknown interest).
  std::vector<std::string> members_of(std::string_view interest) const;
  /// Interests currently defining groups (canonical keys).
  std::vector<std::string> tracked_interests() const;

  /// Typed view of the engine's registry counters (`comparisons`,
  /// `groups_formed`, `groups_dissolved`, `member_joins`, `member_leaves`).
  obs::Snapshot stats() const;

  /// The thesis' Figure 6 batch algorithm: recomputes every group from the
  /// complete peer table in one sweep. Equivalent output to the
  /// event-driven path; exists for the ablation bench.
  void rescan();

 private:
  struct PeerRecord {
    std::vector<std::string> raw_interests;
    std::set<std::string> canonical;  // under the current dictionary
  };

  void trace_event(const char* name, const std::string& interest);
  void match_peer_against_groups(const std::string& member, PeerRecord& record);
  void add_member(Group& group, const std::string& member);
  void drop_member(Group& group, const std::string& member);
  void ensure_groups_for_local();
  /// Recomputes the `formed_groups` gauge. Rebuild()'s group merging can
  /// change the formed count without firing formed/dissolved events, so
  /// the gauge is recomputed after every mutation rather than kept by
  /// +/-1 deltas.
  void refresh_formed_gauge();
  std::set<std::string> canonicalize(const std::vector<std::string>& raw,
                                     Group* label_sink_unused = nullptr);

  std::string local_member_;
  const SemanticDictionary& dictionary_;
  GroupCallbacks callbacks_;
  obs::Trace* trace_ = nullptr;
  std::uint64_t trace_device_ = 0;
  std::function<obs::TimePoint()> trace_clock_;

  std::vector<std::string> local_raw_;
  std::set<std::string> manual_;                 // canonical manual joins
  std::map<std::string, PeerRecord> peers_;      // member -> interests
  std::map<std::string, Group> groups_;          // canonical -> group

  std::unique_ptr<obs::Registry> own_registry_;  // fallback when unwired
  obs::Registry* registry_ = nullptr;            // whichever one is in use
  std::string metric_prefix_;
  obs::Counter* c_comparisons_ = nullptr;
  obs::Counter* c_groups_formed_ = nullptr;
  obs::Counter* c_groups_dissolved_ = nullptr;
  obs::Counter* c_member_joins_ = nullptr;
  obs::Counter* c_member_leaves_ = nullptr;
  obs::Gauge* g_formed_groups_ = nullptr;
};

}  // namespace ph::community
