#include "community/server.hpp"

#include "util/log.hpp"

namespace ph::community {

namespace {

proto::Response make(proto::Opcode op, proto::Status status) {
  proto::Response response;
  response.op = op;
  response.status = status;
  return response;
}

}  // namespace

CommunityServer::CommunityServer(peerhood::PeerHood& peerhood,
                                 ProfileStore& store,
                                 const SemanticDictionary& dictionary)
    : peerhood_(peerhood), store_(store), dictionary_(dictionary) {
  obs::Registry& registry = peerhood_.daemon().transport().registry();
  registry_ = &registry;
  trace_ = &peerhood_.daemon().transport().trace();
  metric_prefix_ =
      "community.server.d" + std::to_string(peerhood_.self()) + ".";
  const std::string& prefix = metric_prefix_;
  c_requests_handled_ = &registry.counter(prefix + "requests_handled");
  c_sessions_accepted_ = &registry.counter(prefix + "sessions_accepted");
  c_bad_requests_ = &registry.counter(prefix + "bad_requests");
}

CommunityServer::~CommunityServer() { stop(); }

obs::Snapshot CommunityServer::stats() const {
  return registry_->snapshot(metric_prefix_);
}

Result<void> CommunityServer::start() {
  if (running_) return ok();
  auto registered = peerhood_.register_service(
      std::string(kServiceName), {{"type", "social"}, {"version", "0.2"}},
      [this](peerhood::Connection connection) { on_accept(std::move(connection)); });
  if (!registered) return registered;
  running_ = true;
  return ok();
}

void CommunityServer::stop() {
  if (!running_) return;
  (void)peerhood_.unregister_service(std::string(kServiceName));
  running_ = false;
}

void CommunityServer::on_accept(peerhood::Connection connection) {
  c_sessions_accepted_->inc();
  // The connection handle is captured by its own handler and released when
  // the session ends.
  auto holder = std::make_shared<peerhood::Connection>(std::move(connection));
  holder->on_message([this, holder](BytesView data) {
    auto request = proto::decode_request(data);
    if (!request) {
      c_bad_requests_->inc();
      PH_LOG(warn, "community") << "bad request: " << request.error().to_string();
      return;
    }
    // Receive-side span, parented under the *client's* RPC span via the
    // trace_parent the request carried across the radio (falls back to
    // the delivering frame's flight span): one tree, two devices.
    const sim::Time now = peerhood_.daemon().scheduler().now();
    const obs::SpanId span = trace_->begin_span_under(
        request->trace_parent, "community.server.handle", now,
        peerhood_.self(), std::string(proto::to_string(request->op)));
    obs::Trace::Scope handling(*trace_, span);  // parents the response send
    holder->send(proto::encode(handle(*request)));
    trace_->end_span(span, peerhood_.daemon().scheduler().now());
  });
  holder->on_close([holder](const Error&) {
    // Dropping the captured shared_ptr would destroy the lambda that holds
    // it while it executes; clearing handlers is deferred to destruction.
  });
}

proto::Response CommunityServer::handle(const proto::Request& request) {
  c_requests_handled_->inc();
  Account* account = active();
  const sim::Time now = peerhood_.daemon().scheduler().now();

  switch (request.op) {
    case proto::Opcode::ps_get_online_member_list: {
      // "Identifies list of online member and transmits the list" — the
      // logged-in member of this device.
      auto response = make(request.op, proto::Status::ok);
      if (account != nullptr) response.names.push_back(account->member_id());
      return response;
    }

    case proto::Opcode::ps_get_interest_list: {
      auto response = make(request.op, proto::Status::ok);
      if (account != nullptr) response.names = account->profile().interests;
      return response;
    }

    case proto::Opcode::ps_get_interested_member_list: {
      // Members on this device interested in request.argument, matched
      // through the semantic dictionary.
      auto response = make(request.op, proto::Status::ok);
      if (account != nullptr) {
        for (const std::string& interest : account->profile().interests) {
          if (dictionary_.same(interest, request.argument)) {
            response.names.push_back(account->member_id());
            break;
          }
        }
      }
      return response;
    }

    case proto::Opcode::ps_get_profile: {
      if (account == nullptr || account->member_id() != request.member_id) {
        return make(request.op, proto::Status::no_members_yet);
      }
      account->record_visitor(request.requester);
      auto response = make(request.op, proto::Status::ok);
      response.profile = account->profile();
      return response;
    }

    case proto::Opcode::ps_add_profile_comment: {
      if (account == nullptr || account->member_id() != request.member_id) {
        return make(request.op, proto::Status::no_members_yet);
      }
      if (request.argument.empty()) {
        return make(request.op, proto::Status::unsuccessful);
      }
      account->add_comment({request.requester, request.argument, now});
      return make(request.op, proto::Status::ok);
    }

    case proto::Opcode::ps_check_member_id: {
      // "Compares the received MemberID with local user's member ID and
      // returns the success or failure."
      if (account != nullptr && account->member_id() == request.member_id) {
        return make(request.op, proto::Status::ok);
      }
      return make(request.op, proto::Status::no_members_yet);
    }

    case proto::Opcode::ps_msg: {
      if (account == nullptr || account->member_id() != request.mail.receiver) {
        return make(request.op, proto::Status::no_members_yet);
      }
      if (request.mail.body.empty() && request.mail.subject.empty()) {
        return make(request.op, proto::Status::unsuccessful);
      }
      proto::MailData mail = request.mail;
      mail.sent_at_us = now;
      account->deliver_mail(std::move(mail));
      return make(request.op, proto::Status::successfully_written);
    }

    case proto::Opcode::ps_get_shared_content: {
      if (account == nullptr || account->member_id() != request.member_id) {
        return make(request.op, proto::Status::no_members_yet);
      }
      if (!account->trusts(request.requester)) {
        return make(request.op, proto::Status::not_trusted_yet);
      }
      auto response = make(request.op, proto::Status::ok);
      response.items = account->shared_items();
      return response;
    }

    case proto::Opcode::ps_get_trusted_friends: {
      if (account == nullptr || account->member_id() != request.member_id) {
        return make(request.op, proto::Status::no_members_yet);
      }
      auto response = make(request.op, proto::Status::ok);
      response.names = account->profile().trusted_friends;
      return response;
    }

    case proto::Opcode::ps_check_trusted: {
      if (account == nullptr || account->member_id() != request.member_id) {
        return make(request.op, proto::Status::no_members_yet);
      }
      return make(request.op, account->trusts(request.requester)
                                  ? proto::Status::ok
                                  : proto::Status::not_trusted_yet);
    }

    case proto::Opcode::ps_get_content: {
      if (account == nullptr || account->member_id() != request.member_id) {
        return make(request.op, proto::Status::no_members_yet);
      }
      if (!account->trusts(request.requester)) {
        return make(request.op, proto::Status::not_trusted_yet);
      }
      auto content = account->shared_file(request.argument);
      if (!content) return make(request.op, proto::Status::unsuccessful);
      auto response = make(request.op, proto::Status::ok);
      response.content_total = content->size();
      response.content = std::move(*content);
      return response;
    }

    case proto::Opcode::ps_get_content_chunk: {
      if (account == nullptr || account->member_id() != request.member_id) {
        return make(request.op, proto::Status::no_members_yet);
      }
      if (!account->trusts(request.requester)) {
        return make(request.op, proto::Status::not_trusted_yet);
      }
      auto content = account->shared_file(request.argument);
      if (!content) return make(request.op, proto::Status::unsuccessful);
      if (request.offset > content->size() || request.length == 0) {
        return make(request.op, proto::Status::unsuccessful);
      }
      auto response = make(request.op, proto::Status::ok);
      response.content_total = content->size();
      const std::size_t take =
          std::min<std::size_t>(request.length, content->size() - request.offset);
      response.content.assign(
          content->begin() + static_cast<std::ptrdiff_t>(request.offset),
          content->begin() + static_cast<std::ptrdiff_t>(request.offset + take));
      return response;
    }
  }
  c_bad_requests_->inc();
  return make(request.op, proto::Status::unsuccessful);
}

}  // namespace ph::community
