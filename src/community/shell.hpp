// Shell — the reference application's terminal user interface.
//
// The thesis' client is menu-driven (Figure 10 "Main user screen";
// Appendix 2 shows the profile, interest, group, message and shared-
// content screens). This Shell reproduces that interface as a scriptable
// command interpreter over a CommunityApp: each command runs the
// corresponding middleware operation (pumping the simulator until the
// asynchronous exchange completes) and returns the text screen the thesis
// would have printed.
//
// Commands (see help()):
//   create/login/logout/whoami           account lifecycle
//   menu                                 the Figure 10 main screen
//   profile [member]                     Figure 13 / own-profile screen
//   set name|age|about <value>           profile editing
//   interests / interest add|remove      interest management
//   members                              Figure 11 online member list
//   allinterests                         Figure 12 interest list
//   group list|members|join|leave        dynamic groups (Table 7)
//   comment <member> <text>              Figure 14
//   msg <member> <subject> | <body>      Figure 17
//   inbox / sent                         message folders
//   trust add|remove|list                trusted friends
//   shared [member] / share / fetch      Figure 16 + file transfer
//   teach <a> = <b>                      semantics teaching
//   devices / services                   PeerHood neighbourhood views
#pragma once

#include <string>

#include "community/app.hpp"

namespace ph::community {

class Shell {
 public:
  /// Operations pump `app.stack().daemon().scheduler()`; `op_timeout`
  /// bounds how long one command may advance virtual time.
  explicit Shell(CommunityApp& app, sim::Duration op_timeout = sim::seconds(30));

  /// Executes one command line; returns the screen text (never throws on
  /// bad input — errors come back as screen text, like a real terminal UI).
  std::string execute(const std::string& line);

  /// The Figure 10 main menu.
  std::string menu() const;
  std::string help() const;

 private:
  // Command handlers; `args` is the remainder after the command word.
  std::string cmd_create(const std::string& args);
  std::string cmd_login(const std::string& args);
  std::string cmd_logout();
  std::string cmd_whoami() const;
  std::string cmd_profile(const std::string& args);
  std::string cmd_set(const std::string& args);
  std::string cmd_interests() const;
  std::string cmd_interest(const std::string& args);
  std::string cmd_members();
  std::string cmd_allinterests();
  std::string cmd_group(const std::string& args);
  std::string cmd_comment(const std::string& args);
  std::string cmd_msg(const std::string& args);
  std::string cmd_inbox(const std::string& args);
  std::string cmd_sent() const;
  std::string cmd_trust(const std::string& args);
  std::string cmd_shared(const std::string& args);
  std::string cmd_share(const std::string& args);
  std::string cmd_fetch(const std::string& args);
  std::string cmd_teach(const std::string& args);
  std::string cmd_devices() const;
  std::string cmd_services() const;

  /// Pumps virtual time until `*done` or the op timeout.
  bool pump(const bool& done);
  std::string require_login() const;

  CommunityApp& app_;
  sim::Duration op_timeout_;
};

}  // namespace ph::community
