#include "community/client.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "community/server.hpp"  // kServiceName
#include "util/log.hpp"

namespace ph::community {

CommunityClient::CommunityClient(peerhood::PeerHood& peerhood,
                                 std::string self_member, ClientConfig config)
    : peerhood_(peerhood),
      self_member_(std::move(self_member)),
      config_(std::move(config)) {
  obs::Registry& registry = peerhood_.daemon().transport().registry();
  trace_ = &peerhood_.daemon().transport().trace();
  registry_ = &registry;
  metric_prefix_ =
      "community.client.d" + std::to_string(peerhood_.self()) + ".";
  const std::string& prefix = metric_prefix_;
  c_rpcs_sent_ = &registry.counter(prefix + "rpcs_sent");
  c_rpcs_failed_ = &registry.counter(prefix + "rpcs_failed");
  c_fanouts_ = &registry.counter(prefix + "fanouts");
  c_cache_hits_ = &registry.counter(prefix + "cache_hits");
  h_rpc_us_ = &registry.histogram(prefix + "rpc_us");
}

obs::Snapshot CommunityClient::stats() const {
  return registry_->snapshot(metric_prefix_);
}

proto::Request CommunityClient::base_request(proto::Opcode op) const {
  proto::Request request;
  request.op = op;
  request.requester = self_member_;
  return request;
}

void CommunityClient::call(peerhood::DeviceId device, proto::Request request,
                           ResponseCallback done) {
  call_with_options(device, std::move(request), config_.rpc_options,
                    std::move(done));
}

void CommunityClient::call_with_options(peerhood::DeviceId device,
                                        proto::Request request,
                                        const peerhood::ConnectOptions& options,
                                        ResponseCallback done) {
  call_with_deadline(device, std::move(request), options, config_.rpc_timeout,
                     std::move(done));
}

void CommunityClient::call_with_deadline(
    peerhood::DeviceId device, proto::Request request,
    const peerhood::ConnectOptions& options, sim::Duration timeout,
    ResponseCallback done) {
  QueuedCall call{device, std::move(request), options, std::move(done)};
  call.timeout = timeout;
  if (active_calls_ >= config_.max_concurrent_rpcs) {
    // The call will sit in the admission queue: make that wait a span so
    // critical-path attribution can separate queueing from the radio.
    call.queue_span = trace_->begin_span(
        "community.queue.wait", peerhood_.daemon().scheduler().now(),
        peerhood_.self(), "queue");
  }
  queue_.push_back(std::move(call));
  drain_queue();
}

void CommunityClient::drain_queue() {
  while (active_calls_ < config_.max_concurrent_rpcs && !queue_.empty()) {
    QueuedCall next = std::move(queue_.front());
    queue_.erase(queue_.begin());
    ++active_calls_;
    trace_->end_span(next.queue_span, peerhood_.daemon().scheduler().now());
    // Completion (whatever the path) releases the slot and drains again.
    // Transient radio_busy refusals (the peer's piconet is momentarily
    // full) re-queue with a randomized backoff instead of failing the
    // caller.
    std::weak_ptr<char> alive = alive_token_;
    ResponseCallback user_done = std::move(next.done);
    const peerhood::DeviceId device = next.device;
    const proto::Request request = next.request;
    const peerhood::ConnectOptions options = next.options;
    const int busy_retries = next.busy_retries;
    const sim::Duration call_timeout = next.timeout;
    next.done = [this, alive, device, request, options, busy_retries,
                 call_timeout,
                 user_done = std::move(user_done)](Result<proto::Response> r) {
      if (alive.expired()) {
        // Client (and therefore its owner) is gone; user_done may capture
        // that owner, so it must not run.
        return;
      }
      --active_calls_;
      if (!r.ok() && r.error().code == Errc::radio_busy && busy_retries > 0) {
        auto& simulator = peerhood_.daemon().scheduler();
        const sim::Duration backoff =
            sim::seconds(peerhood_.daemon().transport().rng().uniform(0.2, 0.8));
        // Randomized idle before the retry: a closed backoff span (the
        // end is already known) feeds critical-path attribution.
        const obs::SpanId wait = trace_->begin_span(
            "community.backoff.wait", simulator.now(), peerhood_.self(),
            "backoff");
        trace_->end_span(wait, simulator.now() + backoff);
        simulator.schedule(backoff, [this, alive, device, request, options,
                                     busy_retries, call_timeout, user_done] {
          if (alive.expired()) return;  // owner gone; drop the callback
          QueuedCall retry{device, request, options, user_done,
                           busy_retries - 1, call_timeout};
          queue_.push_back(std::move(retry));
          drain_queue();
        });
        drain_queue();
        return;
      }
      // Defensive copy of the drain trigger: user_done may destroy us.
      user_done(std::move(r));
      if (!alive.expired()) drain_queue();
    };
    start_call(std::move(next));
  }
}

void CommunityClient::start_call(QueuedCall call) {
  peerhood::DeviceId device = call.device;
  proto::Request request = std::move(call.request);
  const peerhood::ConnectOptions options = call.options;
  const sim::Duration call_timeout =
      call.timeout > 0 ? call.timeout : config_.rpc_timeout;
  ResponseCallback done = std::move(call.done);
  c_rpcs_sent_->inc();
  const sim::Time rpc_start = peerhood_.daemon().scheduler().now();
  const obs::SpanId span =
      trace_->begin_span("community.rpc", rpc_start, peerhood_.self(),
                         std::string(proto::to_string(request.op)));
  // The request header carries the RPC span across the radio: the server
  // parents its handling span under it (one tree spanning both devices).
  request.trace_parent = span;
  std::weak_ptr<char> alive = alive_token_;
  obs::Trace::Scope scope(*trace_, span);  // parents the session's net spans
  peerhood_.connect(
      device, std::string(kServiceName), options,
      [this, alive, call_timeout, span, rpc_start,
       request = std::move(request),
       done = std::move(done)](Result<peerhood::Connection> connected) mutable {
        if (alive.expired()) {
          if (connected) connected->close();
          return;
        }
        if (!connected) {
          c_rpcs_failed_->inc();
          finish_rpc(span, rpc_start);
          done(connected.error());
          return;
        }
        struct CallState {
          peerhood::Connection connection;
          ResponseCallback done;
          sim::EventId timeout = 0;
          bool finished = false;
        };
        auto state = std::make_shared<CallState>();
        state->connection = *connected;
        state->done = std::move(done);
        auto& simulator = peerhood_.daemon().scheduler();
        state->timeout =
            simulator.schedule(call_timeout, [this, alive, state, span,
                                              rpc_start] {
              if (state->finished) return;
              state->finished = true;
              state->connection.close();
              if (alive.expired()) return;
              c_rpcs_failed_->inc();
              finish_rpc(span, rpc_start);
              state->done(Error{Errc::timeout, "rpc timed out"});
            });
        state->connection.on_message([this, alive, state, span,
                                      rpc_start](BytesView data) {
          if (state->finished) return;
          state->finished = true;
          auto response = proto::decode_response(data);
          state->connection.close();
          if (alive.expired()) return;
          peerhood_.daemon().scheduler().cancel(state->timeout);
          finish_rpc(span, rpc_start);
          if (!response) {
            c_rpcs_failed_->inc();
            state->done(response.error());
            return;
          }
          state->done(std::move(*response));
        });
        state->connection.on_close([this, alive, state, span,
                                    rpc_start](const Error& reason) {
          if (state->finished) return;
          state->finished = true;
          if (alive.expired()) return;
          peerhood_.daemon().scheduler().cancel(state->timeout);
          c_rpcs_failed_->inc();
          finish_rpc(span, rpc_start);
          state->done(Error{Errc::connection_lost, reason.message});
        });
        state->connection.send(proto::encode(request));
      });
}

void CommunityClient::finish_rpc(obs::SpanId span, sim::Time start) {
  const sim::Time now = peerhood_.daemon().scheduler().now();
  trace_->end_span(span, now);
  h_rpc_us_->observe(static_cast<double>(now - start));
}

void CommunityClient::fanout(
    proto::Request request, std::function<void(std::vector<FanoutEntry>)> done) {
  c_fanouts_->inc();
  auto targets = peerhood_.find_service(kServiceName);
  if (targets.empty()) {
    done({});
    return;
  }
  struct FanoutState {
    std::vector<FanoutEntry> entries;
    std::size_t pending = 0;
    std::function<void(std::vector<FanoutEntry>)> done;
  };
  auto state = std::make_shared<FanoutState>();
  state->pending = targets.size();
  state->done = std::move(done);
  // "Sends the message to all the connected servers simultaneously."
  for (const auto& [device, service] : targets) {
    (void)service;
    const peerhood::DeviceId id = device.id;
    call(id, request, [state, id](Result<proto::Response> response) {
      if (response) state->entries.push_back({id, std::move(*response)});
      if (--state->pending == 0) {
        std::sort(state->entries.begin(), state->entries.end(),
                  [](const FanoutEntry& a, const FanoutEntry& b) {
                    return a.device < b.device;
                  });
        state->done(std::move(state->entries));
      }
    });
  }
}

void CommunityClient::resolve_member(const std::string& member,
                                     DeviceCallback done) {
  auto cached = member_locations_.find(member);
  if (cached != member_locations_.end()) {
    // Trust the cache only while the daemon still lists the device.
    if (peerhood_.daemon().device(cached->second)) {
      c_cache_hits_->inc();
      done(cached->second);
      return;
    }
    member_locations_.erase(cached);
  }
  auto request = base_request(proto::Opcode::ps_check_member_id);
  request.member_id = member;
  fanout(request, [this, member, done = std::move(done)](
                      std::vector<FanoutEntry> entries) {
    for (const FanoutEntry& entry : entries) {
      if (entry.response.status == proto::Status::ok) {
        member_locations_[member] = entry.device;
        done(entry.device);
        return;
      }
    }
    done(Error{Errc::no_such_member, member});
  });
}

void CommunityClient::invalidate_member(const std::string& member) {
  member_locations_.erase(member);
}

void CommunityClient::invalidate_device(peerhood::DeviceId device) {
  for (auto it = member_locations_.begin(); it != member_locations_.end();) {
    if (it->second == device) {
      it = member_locations_.erase(it);
    } else {
      ++it;
    }
  }
}

void CommunityClient::get_online_members(NamesCallback done) {
  fanout(base_request(proto::Opcode::ps_get_online_member_list),
         [done = std::move(done)](std::vector<FanoutEntry> entries) {
           std::set<std::string> unique;
           for (const FanoutEntry& entry : entries) {
             unique.insert(entry.response.names.begin(),
                           entry.response.names.end());
           }
           done(std::vector<std::string>(unique.begin(), unique.end()));
         });
}

void CommunityClient::get_interest_list(NamesCallback done) {
  // Figure 12: "compares the newly received interests with the interests
  // stored in a list and stores it to that list if it doesn't exist".
  fanout(base_request(proto::Opcode::ps_get_interest_list),
         [done = std::move(done)](std::vector<FanoutEntry> entries) {
           std::set<std::string> unique;
           for (const FanoutEntry& entry : entries) {
             unique.insert(entry.response.names.begin(),
                           entry.response.names.end());
           }
           done(std::vector<std::string>(unique.begin(), unique.end()));
         });
}

void CommunityClient::get_interested_members(const std::string& interest,
                                             NamesCallback done) {
  auto request = base_request(proto::Opcode::ps_get_interested_member_list);
  request.argument = interest;
  fanout(request, [done = std::move(done)](std::vector<FanoutEntry> entries) {
    std::set<std::string> unique;
    for (const FanoutEntry& entry : entries) {
      unique.insert(entry.response.names.begin(), entry.response.names.end());
    }
    done(std::vector<std::string>(unique.begin(), unique.end()));
  });
}

void CommunityClient::view_profile(const std::string& member,
                                   ProfileCallback done) {
  // Figure 13: fan out PS_GETPROFILE; the hosting device answers with the
  // profile, everyone else with NO_MEMBERS_YET.
  auto request = base_request(proto::Opcode::ps_get_profile);
  request.member_id = member;
  fanout(request,
         [member, done = std::move(done)](std::vector<FanoutEntry> entries) {
           for (FanoutEntry& entry : entries) {
             if (entry.response.status == proto::Status::ok) {
               done(std::move(entry.response.profile));
               return;
             }
           }
           done(Error{Errc::no_such_member, member});
         });
}

void CommunityClient::put_profile_comment(const std::string& member,
                                          const std::string& text,
                                          VoidCallback done) {
  auto request = base_request(proto::Opcode::ps_add_profile_comment);
  request.member_id = member;
  request.argument = text;
  fanout(request,
         [member, done = std::move(done)](std::vector<FanoutEntry> entries) {
           for (const FanoutEntry& entry : entries) {
             if (entry.response.status == proto::Status::ok) {
               done(ph::ok());
               return;
             }
           }
           done(Error{Errc::no_such_member, member});
         });
}

void CommunityClient::view_trusted_friends(const std::string& member,
                                           NamesCallback done) {
  auto request = base_request(proto::Opcode::ps_get_trusted_friends);
  request.member_id = member;
  fanout(request,
         [member, done = std::move(done)](std::vector<FanoutEntry> entries) {
           for (FanoutEntry& entry : entries) {
             if (entry.response.status == proto::Status::ok) {
               done(std::move(entry.response.names));
               return;
             }
           }
           done(Error{Errc::no_such_member, member});
         });
}

void CommunityClient::view_shared_content(const std::string& member,
                                          ItemsCallback done) {
  // Figure 16 is two-phase: PS_CHECKTRUSTED first, PS_GETSHAREDCONTENT only
  // when trusted.
  resolve_member(member, [this, member, done = std::move(done)](
                             Result<peerhood::DeviceId> device) mutable {
    if (!device) {
      done(device.error());
      return;
    }
    auto check = base_request(proto::Opcode::ps_check_trusted);
    check.member_id = member;
    const peerhood::DeviceId target = *device;
    call(target, check,
         [this, member, target, done = std::move(done)](
             Result<proto::Response> response) mutable {
           if (!response) {
             done(response.error());
             return;
           }
           if (response->status == proto::Status::not_trusted_yet) {
             done(Error{Errc::not_trusted, member});
             return;
           }
           if (response->status != proto::Status::ok) {
             done(Error{Errc::no_such_member, member});
             return;
           }
           auto list = base_request(proto::Opcode::ps_get_shared_content);
           list.member_id = member;
           call(target, list,
                [member, done = std::move(done)](Result<proto::Response> reply) {
                  if (!reply) {
                    done(reply.error());
                    return;
                  }
                  if (reply->status != proto::Status::ok) {
                    done(Error{Errc::not_trusted, member});
                    return;
                  }
                  done(std::move(reply->items));
                });
         });
  });
}

void CommunityClient::send_message(const std::string& receiver,
                                   const std::string& subject,
                                   const std::string& body, VoidCallback done) {
  resolve_member(receiver, [this, receiver, subject, body,
                            done = std::move(done)](
                               Result<peerhood::DeviceId> device) mutable {
    if (!device) {
      done(device.error());
      return;
    }
    auto request = base_request(proto::Opcode::ps_msg);
    request.mail.receiver = receiver;
    request.mail.sender = self_member_;
    request.mail.subject = subject;
    request.mail.body = body;
    call(*device, request,
         [done = std::move(done)](Result<proto::Response> response) {
           if (!response) {
             done(response.error());
             return;
           }
           if (response->status == proto::Status::successfully_written) {
             done(ph::ok());
           } else {
             done(Error{Errc::state_error,
                        std::string(proto::to_string(response->status))});
           }
         });
  });
}

void CommunityClient::fetch_content_chunked(
    const std::string& member, const std::string& name, std::size_t chunk_size,
    std::function<void(std::uint64_t, std::uint64_t)> progress,
    ContentCallback done) {
  if (chunk_size == 0) {
    done(Error{Errc::invalid_argument, "chunk size must be positive"});
    return;
  }
  std::weak_ptr<char> alive = alive_token_;
  resolve_member(member, [this, alive, member, name, chunk_size,
                          progress = std::move(progress),
                          done = std::move(done)](
                             Result<peerhood::DeviceId> device) mutable {
    if (alive.expired()) return;
    if (!device) {
      done(device.error());
      return;
    }
    struct ChunkState {
      peerhood::Connection connection;
      Bytes data;
      std::uint64_t total = 0;
      bool total_known = false;
      bool finished = false;
      sim::EventId timeout = 0;
    };
    auto state = std::make_shared<ChunkState>();
    peerhood_.connect(
        *device, std::string(kServiceName), config_.transfer_options,
        [this, alive, state, member, name, chunk_size,
         progress = std::move(progress), done = std::move(done)](
            Result<peerhood::Connection> connected) mutable {
          if (alive.expired()) {
            if (connected) connected->close();
            return;
          }
          if (!connected) {
            done(connected.error());
            return;
          }
          state->connection = *connected;
          c_rpcs_sent_->inc();  // one logical transfer

          auto finish = [this, alive, state](auto&& invoke_done) {
            if (state->finished) return;
            state->finished = true;
            if (!alive.expired()) {
              peerhood_.daemon().scheduler().cancel(state->timeout);
            }
            state->connection.close();
            invoke_done();
          };

          // Pulls the next range; re-arms the per-chunk timeout.
          auto request_next = [this, alive, state, member, name, chunk_size,
                               done] {
            if (alive.expired() || state->finished) return;
            proto::Request request = base_request(proto::Opcode::ps_get_content_chunk);
            request.member_id = member;
            request.argument = name;
            request.offset = state->data.size();
            request.length = chunk_size;
            auto& simulator = peerhood_.daemon().scheduler();
            simulator.cancel(state->timeout);
            // The chunk may be retransmitted across a handover; give it the
            // session's resume window on top of the RPC budget.
            state->timeout = simulator.schedule(
                config_.rpc_timeout + config_.transfer_options.resume_deadline,
                [state, done] {
                  if (state->finished) return;
                  state->finished = true;
                  state->connection.close();
                  done(Error{Errc::timeout, "chunk transfer stalled"});
                });
            state->connection.send(proto::encode(request));
          };

          state->connection.on_close([state, done](const Error&) {
            if (state->finished) return;
            state->finished = true;
            done(Error{Errc::connection_lost, "transfer session ended early"});
          });
          state->connection.on_message(
              [this, alive, state, name, progress, done, finish,
               request_next](BytesView payload) mutable {
                if (state->finished || alive.expired()) return;
                auto response = proto::decode_response(payload);
                if (!response) {
                  Error error = std::move(response).error();
                  finish([&] { done(std::move(error)); });
                  return;
                }
                if (response->status != proto::Status::ok) {
                  const Errc code =
                      response->status == proto::Status::not_trusted_yet
                          ? Errc::not_trusted
                      : response->status == proto::Status::no_members_yet
                          ? Errc::no_such_member
                          : Errc::content_not_found;
                  finish([&] { done(Error{code, name}); });
                  return;
                }
                state->total = response->content_total;
                state->total_known = true;
                state->data.insert(state->data.end(),
                                   response->content.begin(),
                                   response->content.end());
                if (progress) progress(state->data.size(), state->total);
                if (state->data.size() >= state->total) {
                  finish([&] { done(std::move(state->data)); });
                  return;
                }
                if (response->content.empty()) {
                  // Defensive: a short read that makes no progress would
                  // loop forever.
                  finish([&] {
                    done(Error{Errc::protocol_error, "empty chunk"});
                  });
                  return;
                }
                request_next();
              });
          request_next();
        });
  });
}

void CommunityClient::fetch_content(const std::string& member,
                                    const std::string& name,
                                    ContentCallback done) {
  resolve_member(member, [this, member, name, done = std::move(done)](
                             Result<peerhood::DeviceId> device) mutable {
    if (!device) {
      done(device.error());
      return;
    }
    auto request = base_request(proto::Opcode::ps_get_content);
    request.member_id = member;
    request.argument = name;
    call_with_deadline(
        *device, request, config_.transfer_options, config_.transfer_timeout,
        [member, name, done = std::move(done)](Result<proto::Response> response) {
          if (!response) {
            done(response.error());
            return;
          }
          switch (response->status) {
            case proto::Status::ok:
              done(std::move(response->content));
              return;
            case proto::Status::not_trusted_yet:
              done(Error{Errc::not_trusted, member});
              return;
            case proto::Status::no_members_yet:
              done(Error{Errc::no_such_member, member});
              return;
            default:
              done(Error{Errc::content_not_found, name});
              return;
          }
        });
  });
}

}  // namespace ph::community
