// CommunityApp — one device's complete PeerHood Community instance.
//
// The thesis' test application is "a client server application and every
// device must have both the client and server" (§5.2.3). CommunityApp is
// that pairing plus the glue that makes group discovery *dynamic*
// (Figure 5): it subscribes to PeerHood's device monitoring, probes every
// neighbour that advertises the PeerHoodCommunity service for its member
// and interests, feeds the GroupEngine, and evicts members whose devices
// leave radio range.
//
// Lifecycle:
//   CommunityApp app(stack);            // server runs from the start
//   app.create_account("alice", "pw");
//   app.login("alice", "pw");           // client + group engine activate
//   app.add_interest("football");       // groups re-evaluate
//   ... virtual time passes, neighbours come and go, groups form ...
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "community/client.hpp"
#include "community/groups.hpp"
#include "community/interests.hpp"
#include "community/profile.hpp"
#include "community/server.hpp"
#include "peerhood/stack.hpp"

namespace ph::community {

struct AppConfig {
  /// Re-probe known peers this often (interest edits on remote devices
  /// become visible at the next probe). 0 disables periodic refresh.
  sim::Duration peer_refresh_interval = sim::seconds(30);
  /// Extension (off = the thesis' design): publish the logged-in member
  /// and their interests as attributes of the PeerHoodCommunity service.
  /// Neighbours that also enable this skip the two probe RPCs entirely —
  /// group discovery happens from service-discovery data alone, and
  /// remote interest edits propagate with the daemon's periodic service
  /// refresh. `bench_ablation_interest_attributes` quantifies the effect.
  bool advertise_interests = false;
  ClientConfig client;
};

class CommunityApp {
 public:
  explicit CommunityApp(peerhood::Stack& stack, AppConfig config = {});
  ~CommunityApp();
  CommunityApp(const CommunityApp&) = delete;
  CommunityApp& operator=(const CommunityApp&) = delete;

  // --- accounts ---------------------------------------------------------
  Result<Account*> create_account(const std::string& member_id,
                                  const std::string& password);
  /// Logs in and activates dynamic group discovery for this member.
  Result<void> login(const std::string& member_id, const std::string& password);
  void logout();
  bool logged_in() const { return store_.active() != nullptr; }
  Account* active() { return store_.active(); }
  const Account* active() const { return store_.active(); }

  // --- profile editing (drives group re-evaluation) -------------------------
  Result<void> add_interest(const std::string& interest);
  Result<void> remove_interest(const std::string& interest);
  Result<void> add_trusted(const std::string& member);
  Result<void> remove_trusted(const std::string& member);
  Result<void> share_file(const std::string& name, Bytes content);
  Result<void> unshare_file(const std::string& name);

  /// Teaches the environment that two interest terms mean the same issue
  /// (the thesis' future-work semantics feature); merges affected groups.
  Result<void> teach_synonym(const std::string& a, const std::string& b);

  /// Manual group membership (Table 7 "Join/Leave Manually").
  Result<void> join_group(const std::string& interest);
  Result<void> leave_group(const std::string& interest);

  /// Sends a message (Figure 17) and, on success, records it in the active
  /// account's sent folder (Table 7: "Send/Receive Messages" with "view
  /// sent messages").
  void send_message(const std::string& receiver, const std::string& subject,
                    const std::string& body,
                    std::function<void(Result<void>)> done);

  // --- persistence (the thesis' on-device files) ---------------------------
  /// Writes every account (profiles, mail, shared files) to `path`.
  Result<void> save_accounts(const std::string& path) const;
  /// Replaces this device's accounts with the contents of `path`; any
  /// active session is logged out first (a freshly booted device starts at
  /// the login screen).
  Result<void> load_accounts(const std::string& path);

  // --- components ---------------------------------------------------------
  /// Valid only while logged in.
  GroupEngine& groups() { return *groups_; }
  CommunityClient& client() { return *client_; }
  CommunityServer& server() { return server_; }
  ProfileStore& profiles() { return store_; }
  SemanticDictionary& dictionary() { return dictionary_; }
  peerhood::Stack& stack() { return stack_; }
  /// Typed view of the registry's `community.app.d<self>.*` counters
  /// (`peers_probed`, `probe_failures`, `peers_gone`).
  obs::Snapshot stats() const;

  /// Member hosted by `device`, if this app has probed it ("" if unknown).
  std::string member_on(peerhood::DeviceId device) const;

 private:
  void on_device_appeared(const peerhood::DeviceInfo& info);
  void on_device_gone(peerhood::DeviceId id);
  void probe_peer(peerhood::DeviceId device);
  void schedule_refresh();
  /// Pushes the active member + interests into the service attributes
  /// (advertise_interests mode).
  void publish_attributes();
  void record_peer(peerhood::DeviceId device, const std::string& member,
                   const std::vector<std::string>& interests);

  peerhood::Stack& stack_;
  AppConfig config_;
  ProfileStore store_;
  SemanticDictionary dictionary_;
  CommunityServer server_;
  std::unique_ptr<CommunityClient> client_;
  std::unique_ptr<GroupEngine> groups_;
  peerhood::Daemon::MonitorId monitor_ = 0;
  std::map<peerhood::DeviceId, std::string> device_members_;
  std::uint64_t refresh_generation_ = 0;
  /// Expires at destruction; the periodic refresh timer checks it before
  /// touching `this` (the timer lives in the simulator, which may outlive
  /// the app).
  std::shared_ptr<char> alive_token_ = std::make_shared<char>();

  // Registry handles (`community.app.d<self>.*`) into the medium's
  // per-world registry.
  obs::Registry* registry_ = nullptr;
  std::string metric_prefix_;
  obs::Counter* c_peers_probed_ = nullptr;
  obs::Counter* c_probe_failures_ = nullptr;
  obs::Counter* c_peers_gone_ = nullptr;
};

}  // namespace ph::community
