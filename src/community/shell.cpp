#include "community/shell.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace ph::community {

namespace {

/// Splits "word rest of line" -> {word, "rest of line"}.
std::pair<std::string, std::string> word_and_rest(std::string_view line) {
  const std::string_view trimmed = trim(line);
  const std::size_t space = trimmed.find(' ');
  if (space == std::string_view::npos) {
    return {std::string(trimmed), ""};
  }
  return {std::string(trimmed.substr(0, space)),
          std::string(trim(trimmed.substr(space + 1)))};
}

std::string bullet_list(const std::vector<std::string>& items,
                        std::string_view empty_note) {
  if (items.empty()) return std::string("  (") + std::string(empty_note) + ")\n";
  std::string out;
  for (const auto& item : items) {
    out += "  - " + item + "\n";
  }
  return out;
}

}  // namespace

Shell::Shell(CommunityApp& app, sim::Duration op_timeout)
    : app_(app), op_timeout_(op_timeout) {}

bool Shell::pump(const bool& done) {
  auto& simulator = app_.stack().daemon().scheduler();
  const sim::Time deadline = simulator.now() + op_timeout_;
  while (!done && simulator.now() < deadline) {
    simulator.run_for(sim::milliseconds(50));
  }
  return done;
}

std::string Shell::require_login() const {
  return app_.logged_in() ? "" : "error: not logged in (use: login <member> <password>)\n";
}

std::string Shell::menu() const {
  // Figure 10: "The user is provided with various features as choices".
  std::ostringstream out;
  out << "========== PeerHood Community ==========\n";
  if (app_.logged_in()) {
    out << " logged in as: " << app_.active()->member_id() << "\n";
  } else {
    out << " not logged in\n";
  }
  out << "----------------------------------------\n"
      << " 1. profile        view/edit own profile\n"
      << " 2. members        list online members\n"
      << " 3. allinterests   list interests in the neighbourhood\n"
      << " 4. group list     view dynamic groups\n"
      << " 5. msg / inbox    send and read messages\n"
      << " 6. trust          manage trusted friends\n"
      << " 7. shared         view/transfer shared content\n"
      << " 8. devices        PeerHood neighbourhood\n"
      << " type 'help' for the full command list\n"
      << "========================================\n";
  return out.str();
}

std::string Shell::help() const {
  return
      "commands:\n"
      "  create <member> <password>      create a local profile\n"
      "  login <member> <password>       log in (activates group discovery)\n"
      "  logout | whoami | menu\n"
      "  profile [member]                view a profile (Fig 13)\n"
      "  set name|age|about <value>      edit own profile\n"
      "  interests                       list own interests\n"
      "  interest add|remove <text>      edit interests (groups re-evaluate)\n"
      "  members                         online member list (Fig 11)\n"
      "  allinterests                    neighbourhood interests (Fig 12)\n"
      "  group list                      all dynamic groups\n"
      "  group members <interest>        members of a group\n"
      "  group join|leave <interest>     manual membership\n"
      "  comment <member> <text>         comment a profile (Fig 14)\n"
      "  msg <member> <subject> | <body> send a message (Fig 17)\n"
      "  inbox [delete <n>] | sent       message folders\n"
      "  trust add|remove <member>       manage trusted friends\n"
      "  trust list [member]             trusted friends (Fig 15)\n"
      "  shared [member]                 shared content (Fig 16)\n"
      "  share <name> <bytes>            share synthetic content\n"
      "  fetch <member> <name>           download shared content\n"
      "  teach <a> = <b>                 teach interest semantics\n"
      "  devices | services              PeerHood views\n"
      "  save <path> | load <path>       persist/restore all accounts\n";
}

std::string Shell::execute(const std::string& line) {
  auto [command, args] = word_and_rest(line);
  if (command.empty() || command[0] == '#') return "";
  if (command == "menu") return menu();
  if (command == "help") return help();
  if (command == "create") return cmd_create(args);
  if (command == "login") return cmd_login(args);
  if (command == "logout") return cmd_logout();
  if (command == "whoami") return cmd_whoami();
  if (command == "profile") return cmd_profile(args);
  if (command == "set") return cmd_set(args);
  if (command == "interests") return cmd_interests();
  if (command == "interest") return cmd_interest(args);
  if (command == "members") return cmd_members();
  if (command == "allinterests") return cmd_allinterests();
  if (command == "group") return cmd_group(args);
  if (command == "comment") return cmd_comment(args);
  if (command == "msg") return cmd_msg(args);
  if (command == "inbox") return cmd_inbox(args);
  if (command == "sent") return cmd_sent();
  if (command == "trust") return cmd_trust(args);
  if (command == "shared") return cmd_shared(args);
  if (command == "share") return cmd_share(args);
  if (command == "fetch") return cmd_fetch(args);
  if (command == "teach") return cmd_teach(args);
  if (command == "devices") return cmd_devices();
  if (command == "services") return cmd_services();
  if (command == "save") {
    if (args.empty()) return "usage: save <path>\n";
    auto saved = app_.save_accounts(args);
    return saved ? "accounts saved to " + args + "\n"
                 : "error: " + saved.error().to_string() + "\n";
  }
  if (command == "load") {
    if (args.empty()) return "usage: load <path>\n";
    auto loaded = app_.load_accounts(args);
    return loaded ? "accounts loaded from " + args + "; please log in\n"
                  : "error: " + loaded.error().to_string() + "\n";
  }
  return "error: unknown command '" + command + "' (try 'help')\n";
}

std::string Shell::cmd_create(const std::string& args) {
  auto [member, password] = word_and_rest(args);
  if (member.empty() || password.empty()) {
    return "usage: create <member> <password>\n";
  }
  auto created = app_.create_account(member, password);
  if (!created) return "error: " + created.error().to_string() + "\n";
  return "profile '" + member + "' created; log in to use it\n";
}

std::string Shell::cmd_login(const std::string& args) {
  auto [member, password] = word_and_rest(args);
  if (member.empty() || password.empty()) {
    return "usage: login <member> <password>\n";
  }
  auto logged = app_.login(member, password);
  if (!logged) return "error: " + logged.error().to_string() + "\n";
  return "welcome, " + member + "! dynamic group discovery is running\n";
}

std::string Shell::cmd_logout() {
  if (!app_.logged_in()) return "not logged in\n";
  app_.logout();
  return "logged out\n";
}

std::string Shell::cmd_whoami() const {
  if (!app_.logged_in()) return "not logged in\n";
  return app_.active()->member_id() + "\n";
}

std::string Shell::cmd_profile(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto render = [](const proto::ProfileData& profile) {
    std::ostringstream out;
    out << "--- profile: " << profile.member_id << " ---\n"
        << "  name : " << profile.display_name << "\n"
        << "  age  : " << profile.age << "\n"
        << "  about: " << profile.about << "\n"
        << "  interests:\n"
        << bullet_list(profile.interests, "none")
        << "  trusted friends:\n"
        << bullet_list(profile.trusted_friends, "none")
        << "  comments:\n";
    if (profile.comments.empty()) {
      out << "  (none)\n";
    } else {
      for (const auto& comment : profile.comments) {
        out << "  - [" << comment.author << "] " << comment.text << "\n";
      }
    }
    out << "  visitors:\n" << bullet_list(profile.visitors, "none");
    return out.str();
  };
  if (args.empty() || args == app_.active()->member_id()) {
    return render(app_.active()->profile());
  }
  // Remote profile: the Figure 13 fan-out.
  bool done = false;
  std::string screen;
  app_.client().view_profile(args, [&](Result<proto::ProfileData> profile) {
    screen = profile ? render(*profile)
                     : "error: " + profile.error().to_string() + "\n";
    done = true;
  });
  if (!pump(done)) return "error: timed out\n";
  return screen;
}

std::string Shell::cmd_set(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [field, value] = word_and_rest(args);
  if (field == "name" && !value.empty()) {
    app_.active()->profile().display_name = value;
    return "name updated\n";
  }
  if (field == "age" && !value.empty()) {
    try {
      app_.active()->profile().age = static_cast<std::uint32_t>(std::stoul(value));
    } catch (...) {
      return "error: age must be a number\n";
    }
    return "age updated\n";
  }
  if (field == "about" && !value.empty()) {
    app_.active()->profile().about = value;
    return "about updated\n";
  }
  return "usage: set name|age|about <value>\n";
}

std::string Shell::cmd_interests() const {
  if (auto error = require_login(); !error.empty()) return error;
  return "own interests:\n" +
         bullet_list(app_.active()->profile().interests, "none");
}

std::string Shell::cmd_interest(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [action, text] = word_and_rest(args);
  if (text.empty()) return "usage: interest add|remove <text>\n";
  if (action == "add") {
    if (auto added = app_.add_interest(text); !added) {
      return "error: " + added.error().to_string() + "\n";
    }
    return "interest '" + text + "' added; groups re-evaluated\n";
  }
  if (action == "remove") {
    if (auto removed = app_.remove_interest(text); !removed) {
      return "error: " + removed.error().to_string() + "\n";
    }
    return "interest '" + text + "' removed\n";
  }
  return "usage: interest add|remove <text>\n";
}

std::string Shell::cmd_members() {
  if (auto error = require_login(); !error.empty()) return error;
  bool done = false;
  std::string screen;
  app_.client().get_online_members([&](Result<std::vector<std::string>> members) {
    screen = members ? "online members:\n" + bullet_list(*members, "nobody nearby")
                     : "error: " + members.error().to_string() + "\n";
    done = true;
  });
  if (!pump(done)) return "error: timed out\n";
  return screen;
}

std::string Shell::cmd_allinterests() {
  if (auto error = require_login(); !error.empty()) return error;
  bool done = false;
  std::string screen;
  app_.client().get_interest_list([&](Result<std::vector<std::string>> interests) {
    screen = interests
                 ? "interests in the neighbourhood:\n" +
                       bullet_list(*interests, "none")
                 : "error: " + interests.error().to_string() + "\n";
    done = true;
  });
  if (!pump(done)) return "error: timed out\n";
  return screen;
}

std::string Shell::cmd_group(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [action, interest] = word_and_rest(args);
  if (action == "list") {
    std::ostringstream out;
    out << "dynamic groups:\n";
    const auto groups = app_.groups().groups();
    if (groups.empty()) out << "  (none)\n";
    for (const auto& group : groups) {
      out << "  - " << group.interest << " [" << group.members.size()
          << " member(s)" << (group.formed() ? "" : ", waiting for matches")
          << "]\n";
    }
    return out.str();
  }
  if (action == "members" && !interest.empty()) {
    auto group = app_.groups().group(interest);
    if (!group) return "error: " + group.error().to_string() + "\n";
    return "members of '" + group->interest + "':\n" +
           bullet_list({group->members.begin(), group->members.end()}, "none");
  }
  if (action == "join" && !interest.empty()) {
    if (auto joined = app_.join_group(interest); !joined) {
      return "error: " + joined.error().to_string() + "\n";
    }
    return "joined group '" + interest + "'\n";
  }
  if (action == "leave" && !interest.empty()) {
    if (auto left = app_.leave_group(interest); !left) {
      return "error: " + left.error().to_string() + "\n";
    }
    return "left group '" + interest + "'\n";
  }
  return "usage: group list | group members|join|leave <interest>\n";
}

std::string Shell::cmd_comment(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [member, text] = word_and_rest(args);
  if (member.empty() || text.empty()) return "usage: comment <member> <text>\n";
  bool done = false;
  std::string screen;
  app_.client().put_profile_comment(member, text, [&](Result<void> result) {
    screen = result ? "comment written to " + member + "'s profile\n"
                    : "error: " + result.error().to_string() + "\n";
    done = true;
  });
  if (!pump(done)) return "error: timed out\n";
  return screen;
}

std::string Shell::cmd_msg(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [member, rest] = word_and_rest(args);
  const std::size_t bar = rest.find('|');
  if (member.empty() || bar == std::string::npos) {
    return "usage: msg <member> <subject> | <body>\n";
  }
  const std::string subject{trim(rest.substr(0, bar))};
  const std::string body{trim(rest.substr(bar + 1))};
  bool done = false;
  std::string screen;
  app_.send_message(member, subject, body, [&](Result<void> result) {
    screen = result ? "message delivered to " + member + "\n"
                    : "error: " + result.error().to_string() + "\n";
    done = true;
  });
  if (!pump(done)) return "error: timed out\n";
  return screen;
}

std::string Shell::cmd_inbox(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [action, number_text] = word_and_rest(args);
  if (action == "delete" && !number_text.empty()) {
    std::size_t number = 0;
    try {
      number = std::stoul(number_text);
    } catch (...) {
      return "usage: inbox delete <number>\n";
    }
    if (auto deleted = app_.active()->delete_mail(number); !deleted) {
      return "error: " + deleted.error().to_string() + "\n";
    }
    return "message " + number_text + " deleted\n";
  }
  if (!action.empty()) return "usage: inbox [delete <number>]\n";
  std::ostringstream out;
  out << "inbox (" << app_.active()->inbox().size() << " message(s)):\n";
  std::size_t number = 0;
  for (const auto& mail : app_.active()->inbox()) {
    out << "  " << ++number << ". from " << mail.sender << ": ["
        << mail.subject << "] " << mail.body << "\n";
  }
  if (app_.active()->inbox().empty()) out << "  (empty)\n";
  return out.str();
}

std::string Shell::cmd_sent() const {
  if (auto error = require_login(); !error.empty()) return error;
  std::ostringstream out;
  out << "sent (" << app_.active()->sent().size() << " message(s)):\n";
  for (const auto& mail : app_.active()->sent()) {
    out << "  to " << mail.receiver << ": [" << mail.subject << "] "
        << mail.body << "\n";
  }
  if (app_.active()->sent().empty()) out << "  (empty)\n";
  return out.str();
}

std::string Shell::cmd_trust(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [action, member] = word_and_rest(args);
  if (action == "add" && !member.empty()) {
    if (auto added = app_.add_trusted(member); !added) {
      return "error: " + added.error().to_string() + "\n";
    }
    return member + " is now a trusted friend\n";
  }
  if (action == "remove" && !member.empty()) {
    if (auto removed = app_.remove_trusted(member); !removed) {
      return "error: " + removed.error().to_string() + "\n";
    }
    return member + " removed from trusted friends\n";
  }
  if (action == "list") {
    if (member.empty()) {
      return "own trusted friends:\n" +
             bullet_list(app_.active()->profile().trusted_friends, "none");
    }
    bool done = false;
    std::string screen;
    app_.client().view_trusted_friends(
        member, [&](Result<std::vector<std::string>> friends) {
          screen = friends ? member + "'s trusted friends:\n" +
                                 bullet_list(*friends, "none")
                           : "error: " + friends.error().to_string() + "\n";
          done = true;
        });
    if (!pump(done)) return "error: timed out\n";
    return screen;
  }
  return "usage: trust add|remove <member> | trust list [member]\n";
}

std::string Shell::cmd_shared(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  if (args.empty()) {
    std::ostringstream out;
    out << "own shared content:\n";
    const auto items = app_.active()->shared_items();
    if (items.empty()) out << "  (none)\n";
    for (const auto& item : items) {
      out << "  - " << item.name << " (" << item.size_bytes << " bytes)\n";
    }
    return out.str();
  }
  bool done = false;
  std::string screen;
  app_.client().view_shared_content(
      args, [&](Result<std::vector<proto::SharedItemData>> items) {
        if (!items) {
          screen = items.error().code == Errc::not_trusted
                       ? "NOT_TRUSTED_YET: " + args +
                             " has not accepted you as a trusted friend\n"
                       : "error: " + items.error().to_string() + "\n";
        } else {
          std::ostringstream out;
          out << args << "'s shared content:\n";
          if (items->empty()) out << "  (none)\n";
          for (const auto& item : *items) {
            out << "  - " << item.name << " (" << item.size_bytes << " bytes)\n";
          }
          screen = out.str();
        }
        done = true;
      });
  if (!pump(done)) return "error: timed out\n";
  return screen;
}

std::string Shell::cmd_share(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [name, size_text] = word_and_rest(args);
  if (name.empty() || size_text.empty()) return "usage: share <name> <bytes>\n";
  std::size_t size = 0;
  try {
    size = std::stoul(size_text);
  } catch (...) {
    return "error: <bytes> must be a number\n";
  }
  if (auto shared = app_.share_file(name, Bytes(size, 0x5a)); !shared) {
    return "error: " + shared.error().to_string() + "\n";
  }
  return "sharing '" + name + "' (" + size_text + " bytes) with trusted friends\n";
}

std::string Shell::cmd_fetch(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  auto [member, name] = word_and_rest(args);
  if (member.empty() || name.empty()) return "usage: fetch <member> <name>\n";
  bool done = false;
  std::string screen;
  app_.client().fetch_content(member, name, [&](Result<Bytes> content) {
    screen = content ? "downloaded '" + name + "' (" +
                           std::to_string(content->size()) + " bytes) from " +
                           member + "\n"
                     : "error: " + content.error().to_string() + "\n";
    done = true;
  });
  if (!pump(done)) return "error: timed out\n";
  return screen;
}

std::string Shell::cmd_teach(const std::string& args) {
  if (auto error = require_login(); !error.empty()) return error;
  const std::size_t eq = args.find('=');
  if (eq == std::string::npos) return "usage: teach <a> = <b>\n";
  const std::string a{trim(args.substr(0, eq))};
  const std::string b{trim(args.substr(eq + 1))};
  if (a.empty() || b.empty()) return "usage: teach <a> = <b>\n";
  (void)app_.teach_synonym(a, b);
  return "taught: '" + a + "' means the same as '" + b + "'; groups merged\n";
}

std::string Shell::cmd_devices() const {
  std::ostringstream out;
  out << "PeerHood neighbourhood:\n";
  const auto devices = app_.stack().daemon().devices();
  if (devices.empty()) out << "  (no devices in range)\n";
  for (const auto& device : devices) {
    out << "  - " << device.name << " (id " << device.id << ", ";
    for (std::size_t i = 0; i < device.technologies.size(); ++i) {
      out << (i ? "+" : "") << net::to_string(device.technologies[i]);
    }
    out << ", " << device.services.size() << " service(s))\n";
  }
  return out.str();
}

std::string Shell::cmd_services() const {
  std::ostringstream out;
  out << "registered services in the neighbourhood:\n";
  bool any = false;
  for (const auto& device : app_.stack().daemon().devices()) {
    for (const auto& service : device.services) {
      out << "  - " << service.name << " @ " << device.name << "\n";
      any = true;
    }
  }
  for (const auto& service : app_.stack().daemon().local_services()) {
    out << "  - " << service.name << " @ (this device)\n";
    any = true;
  }
  if (!any) out << "  (none)\n";
  return out.str();
}

}  // namespace ph::community
