// CommunityClient — the client half of PeerHood Community (thesis §5.2.3.2).
//
// "The main functionality of the client is to connect to remote application
// servers on remote PTDs and send requests and receive the desired
// information from servers."
//
// Every MSC in the thesis (Figures 11–17) opens with the client sending the
// request "to all the connected servers simultaneously"; fanout() is that
// primitive. Operations addressed to one member (profile view, messaging,
// trusted content) locate the member's device first — a PS_CHECKMEMBERID
// sweep whose answer is cached — then talk to that device only, which is
// how the thesis' MSCs show every non-target server answering
// NO_MEMBERS_YET.
//
// All operations are asynchronous: they take a completion callback and run
// on the simulator's virtual time. The client must outlive its pending
// operations (in practice: the client lives as long as the app).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peerhood/library.hpp"
#include "proto/messages.hpp"
#include "util/result.hpp"

namespace ph::community {

/// Session options for short request/response exchanges: plain connections,
/// matching the thesis implementation (a dropped link fails the RPC).
inline peerhood::ConnectOptions plain_rpc_options() {
  peerhood::ConnectOptions options;
  options.seamless = false;
  return options;
}

struct ClientConfig {
  /// Abandon an RPC (and close its session) after this long.
  sim::Duration rpc_timeout = sim::seconds(8);
  /// Content transfers get a far larger budget: a megabyte over Bluetooth
  /// alone takes ~12 s, plus possible handovers.
  sim::Duration transfer_timeout = sim::minutes(5);
  peerhood::ConnectOptions rpc_options = plain_rpc_options();
  /// Session options for content transfers: seamless (default), so a
  /// download survives walking from Bluetooth range into WLAN-only range.
  peerhood::ConnectOptions transfer_options;
  /// At most this many RPC sessions in flight; the rest queue. Keeps
  /// large fan-outs within the radio's link capacity (a Bluetooth piconet
  /// carries at most 7 links), trading a little latency for never
  /// tripping "radio at link capacity" failures.
  int max_concurrent_rpcs = 5;
};

class CommunityClient {
 public:
  /// Snapshot of the registry's `community.client.d<self>.*` counters; the
  /// medium's per-world registry is the source of truth.
  using VoidCallback = std::function<void(Result<void>)>;
  using NamesCallback = std::function<void(Result<std::vector<std::string>>)>;
  using ProfileCallback = std::function<void(Result<proto::ProfileData>)>;
  using ItemsCallback =
      std::function<void(Result<std::vector<proto::SharedItemData>>)>;
  using ContentCallback = std::function<void(Result<Bytes>)>;
  using ResponseCallback = std::function<void(Result<proto::Response>)>;
  using DeviceCallback = std::function<void(Result<peerhood::DeviceId>)>;

  CommunityClient(peerhood::PeerHood& peerhood, std::string self_member,
                  ClientConfig config = {});

  const std::string& self_member() const noexcept { return self_member_; }
  void set_self_member(std::string member) { self_member_ = std::move(member); }

  // --- raw RPC primitives ---------------------------------------------------
  /// One request/response exchange with one device.
  void call(peerhood::DeviceId device, proto::Request request,
            ResponseCallback done);
  /// Same, with explicit session options (content transfers).
  void call_with_options(peerhood::DeviceId device, proto::Request request,
                         const peerhood::ConnectOptions& options,
                         ResponseCallback done);
  /// Same, with an explicit completion deadline (large transfers need far
  /// more than the control-RPC timeout).
  void call_with_deadline(peerhood::DeviceId device, proto::Request request,
                          const peerhood::ConnectOptions& options,
                          sim::Duration timeout, ResponseCallback done);

  struct FanoutEntry {
    peerhood::DeviceId device;
    proto::Response response;
  };
  /// Sends `request` to every neighbourhood device advertising
  /// PeerHoodCommunity; collects the successful responses (devices that
  /// fail to connect or time out are skipped, like the thesis' client
  /// skipping unreachable servers).
  void fanout(proto::Request request,
              std::function<void(std::vector<FanoutEntry>)> done);

  /// Finds which device hosts `member` (PS_CHECKMEMBERID sweep, cached).
  void resolve_member(const std::string& member, DeviceCallback done);
  /// Drops a cache entry (App calls this when a device disappears).
  void invalidate_member(const std::string& member);
  void invalidate_device(peerhood::DeviceId device);

  // --- MSC operations ----------------------------------------------------------
  void get_online_members(NamesCallback done);             ///< Figure 11
  void get_interest_list(NamesCallback done);              ///< Figure 12
  void get_interested_members(const std::string& interest,
                              NamesCallback done);
  void view_profile(const std::string& member, ProfileCallback done);  ///< Fig 13
  void put_profile_comment(const std::string& member, const std::string& text,
                           VoidCallback done);             ///< Figure 14
  void view_trusted_friends(const std::string& member, NamesCallback done);  ///< Fig 15
  void view_shared_content(const std::string& member, ItemsCallback done);   ///< Fig 16
  void send_message(const std::string& receiver, const std::string& subject,
                    const std::string& body, VoidCallback done);  ///< Figure 17
  /// Downloads one shared file over a seamless session (whole file in one
  /// response — fine for small content).
  void fetch_content(const std::string& member, const std::string& name,
                     ContentCallback done);

  /// Chunked download over ONE seamless session: pulls `chunk_size`-byte
  /// ranges sequentially, invoking `progress(received, total)` after each.
  /// A mid-transfer handover retransmits at most one chunk instead of the
  /// whole file. `progress` may be null.
  void fetch_content_chunked(
      const std::string& member, const std::string& name,
      std::size_t chunk_size,
      std::function<void(std::uint64_t received, std::uint64_t total)> progress,
      ContentCallback done);

  /// Typed view of the client's registry instruments (`rpcs_sent`,
  /// `rpcs_failed`, `fanouts`, `cache_hits`, `rpc_us`).
  obs::Snapshot stats() const;

 private:
  proto::Request base_request(proto::Opcode op) const;

  struct QueuedCall {
    peerhood::DeviceId device;
    proto::Request request;
    peerhood::ConnectOptions options;
    ResponseCallback done;
    /// Remaining retries for transient radio_busy refusals (piconet full).
    int busy_retries = 4;
    /// Per-call completion deadline (rpc_timeout for control RPCs,
    /// transfer_timeout for content downloads).
    sim::Duration timeout = 0;
    /// Open while the call waits for a concurrency slot (admission queue).
    obs::SpanId queue_span = 0;
  };
  /// Starts queued calls while below the concurrency limit.
  void drain_queue();
  void start_call(QueuedCall call);
  /// Closes the RPC's trace span and records its virtual-time latency.
  void finish_rpc(obs::SpanId span, sim::Time start);

  peerhood::PeerHood& peerhood_;
  std::string self_member_;
  ClientConfig config_;
  std::map<std::string, peerhood::DeviceId> member_locations_;
  std::vector<QueuedCall> queue_;
  int active_calls_ = 0;
  /// Expires when the client is destroyed; in-flight completions captured
  /// by live sessions check it before touching `this` (a client may be torn
  /// down at logout while RPCs are still in the air).
  std::shared_ptr<char> alive_token_ = std::make_shared<char>();

  // Registry handles (`community.client.d<self>.*`) into the medium's
  // per-world registry; the trace journal is shared the same way.
  obs::Trace* trace_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::string metric_prefix_;
  obs::Counter* c_rpcs_sent_ = nullptr;
  obs::Counter* c_rpcs_failed_ = nullptr;
  obs::Counter* c_fanouts_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Histogram* h_rpc_us_ = nullptr;  ///< virtual-time RPC latency
};

}  // namespace ph::community
