#include "community/profile.hpp"

#include <algorithm>

namespace ph::community {

Account::Account(std::string member_id, std::string password)
    : password_(std::move(password)) {
  profile_.member_id = std::move(member_id);
  profile_.display_name = profile_.member_id;
}

void Account::add_interest(const std::string& interest) {
  auto& interests = profile_.interests;
  if (std::find(interests.begin(), interests.end(), interest) == interests.end()) {
    interests.push_back(interest);
  }
}

Result<void> Account::remove_interest(const std::string& interest) {
  auto& interests = profile_.interests;
  auto it = std::find(interests.begin(), interests.end(), interest);
  if (it == interests.end()) {
    return Error{Errc::invalid_argument, "no such interest: " + interest};
  }
  interests.erase(it);
  return ok();
}

bool Account::trusts(std::string_view member) const {
  const auto& trusted = profile_.trusted_friends;
  return std::find(trusted.begin(), trusted.end(), member) != trusted.end();
}

void Account::add_trusted(const std::string& member) {
  if (!trusts(member) && member != member_id()) {
    profile_.trusted_friends.push_back(member);
  }
}

Result<void> Account::remove_trusted(const std::string& member) {
  auto& trusted = profile_.trusted_friends;
  auto it = std::find(trusted.begin(), trusted.end(), member);
  if (it == trusted.end()) {
    return Error{Errc::invalid_argument, "not a trusted friend: " + member};
  }
  trusted.erase(it);
  return ok();
}

void Account::add_comment(proto::CommentData comment) {
  profile_.comments.push_back(std::move(comment));
}

void Account::record_visitor(const std::string& visitor) {
  auto& visitors = profile_.visitors;
  if (visitor.empty() || visitor == member_id()) return;
  if (std::find(visitors.begin(), visitors.end(), visitor) == visitors.end()) {
    visitors.push_back(visitor);
  }
}

Result<void> Account::delete_mail(std::size_t number) {
  if (number == 0 || number > inbox_.size()) {
    return Error{Errc::invalid_argument,
                 "no message #" + std::to_string(number)};
  }
  inbox_.erase(inbox_.begin() + static_cast<std::ptrdiff_t>(number - 1));
  return ok();
}

void Account::share_file(const std::string& name, Bytes content) {
  shared_files_[name] = std::move(content);
}

Result<void> Account::unshare_file(const std::string& name) {
  if (shared_files_.erase(name) == 0) {
    return Error{Errc::content_not_found, name};
  }
  return ok();
}

Result<Bytes> Account::shared_file(const std::string& name) const {
  auto it = shared_files_.find(name);
  if (it == shared_files_.end()) {
    return Error{Errc::content_not_found, name};
  }
  return it->second;
}

std::vector<proto::SharedItemData> Account::shared_items() const {
  std::vector<proto::SharedItemData> out;
  out.reserve(shared_files_.size());
  for (const auto& [name, content] : shared_files_) {
    out.push_back({name, content.size()});
  }
  return out;
}

Result<Account*> ProfileStore::create_account(const std::string& member_id,
                                              const std::string& password) {
  if (member_id.empty()) {
    return Error{Errc::invalid_argument, "member id must not be empty"};
  }
  auto [it, inserted] = accounts_.try_emplace(member_id, member_id, password);
  if (!inserted) {
    return Error{Errc::state_error, "account exists: " + member_id};
  }
  return &it->second;
}

Account* ProfileStore::find(const std::string& member_id) {
  auto it = accounts_.find(member_id);
  return it == accounts_.end() ? nullptr : &it->second;
}

const Account* ProfileStore::find(const std::string& member_id) const {
  auto it = accounts_.find(member_id);
  return it == accounts_.end() ? nullptr : &it->second;
}

Result<Account*> ProfileStore::login(const std::string& member_id,
                                     const std::string& password) {
  Account* account = find(member_id);
  if (account == nullptr || !account->check_password(password)) {
    return Error{Errc::auth_failed, "bad credentials for " + member_id};
  }
  active_ = account;
  return account;
}

std::vector<std::string> ProfileStore::member_ids() const {
  std::vector<std::string> out;
  out.reserve(accounts_.size());
  for (const auto& [id, account] : accounts_) {
    (void)account;
    out.push_back(id);
  }
  return out;
}

}  // namespace ph::community
