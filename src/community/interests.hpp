// Interest semantics.
//
// Interests drive dynamic group discovery: "biking" and "cycling" should
// land in one group, not two. The thesis names this its main future work —
// "semantics teaching to the environment while defining interests for
// combining interest terms meaning the same issue" — and §5.1 already
// sketches it ("users may teach the semantics to the environment by
// combining terms meaning the same issue"). SemanticDictionary implements
// it: a union-find over normalized interest terms, where teach(a, b)
// merges two synonym classes. The canonical representative of a class is
// its lexicographically smallest term, so canonicalization is stable and
// independent of teaching order.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ph::community {

class SemanticDictionary {
 public:
  /// Declares `a` and `b` to mean the same issue. Terms are normalized
  /// (trimmed, lower-cased, whitespace-squeezed) before merging.
  void teach(std::string_view a, std::string_view b);

  /// The canonical key for a term: the smallest member of its synonym
  /// class. Unknown terms canonicalize to their own normalized form.
  std::string canonical(std::string_view term) const;

  /// True when both terms canonicalize to the same class.
  bool same(std::string_view a, std::string_view b) const;

  /// All taught terms in the same class as `term` (normalized forms,
  /// sorted). A term never taught returns just itself.
  std::vector<std::string> synonyms(std::string_view term) const;

  /// Number of teach() merges that actually joined two distinct classes.
  std::size_t merge_count() const noexcept { return merges_; }

 private:
  const std::string* find_root(const std::string& term) const;

  // parent_[t] = t for roots. Roots hold the class-smallest term via
  // rep_ lookups done at canonicalization time.
  mutable std::map<std::string, std::string> parent_;
  std::size_t merges_ = 0;
};

}  // namespace ph::community
