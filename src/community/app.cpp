#include "community/app.hpp"

#include "community/persistence.hpp"
#include "util/log.hpp"
#include "obs/prof.hpp"
#include "util/strings.hpp"

namespace ph::community {

CommunityApp::CommunityApp(peerhood::Stack& stack, AppConfig config)
    : stack_(stack),
      config_(std::move(config)),
      server_(stack.library(), store_, dictionary_) {
  // The thesis requires the server to run continuously on every PTD.
  if (auto started = server_.start(); !started) {
    PH_LOG(error, "app") << "server failed to start: "
                         << started.error().to_string();
  }
  obs::Registry& registry = stack_.transport().registry();
  registry_ = &registry;
  metric_prefix_ =
      "community.app.d" + std::to_string(stack_.daemon().self()) + ".";
  const std::string& prefix = metric_prefix_;
  c_peers_probed_ = &registry.counter(prefix + "peers_probed");
  c_probe_failures_ = &registry.counter(prefix + "probe_failures");
  c_peers_gone_ = &registry.counter(prefix + "peers_gone");
}

obs::Snapshot CommunityApp::stats() const {
  return registry_->snapshot(metric_prefix_);
}

CommunityApp::~CommunityApp() {
  if (monitor_ != 0) stack_.daemon().unmonitor(monitor_);
}

Result<Account*> CommunityApp::create_account(const std::string& member_id,
                                              const std::string& password) {
  return store_.create_account(member_id, password);
}

Result<void> CommunityApp::login(const std::string& member_id,
                                 const std::string& password) {
  auto account = store_.login(member_id, password);
  if (!account) return account.error();

  client_ = std::make_unique<CommunityClient>(stack_.library(), member_id,
                                              config_.client);
  groups_ = std::make_unique<GroupEngine>(
      member_id, dictionary_, &stack_.transport().registry(),
      "community.groups.d" + std::to_string(stack_.daemon().self()) + ".");
  groups_->set_trace(&stack_.transport().trace(), stack_.daemon().self(),
                     [this] { return stack_.transport().scheduler().now(); });
  groups_->set_local_interests((*account)->profile().interests);
  device_members_.clear();

  // Dynamic group discovery (Figure 5): react to neighbourhood changes.
  if (monitor_ != 0) stack_.daemon().unmonitor(monitor_);
  monitor_ = stack_.daemon().monitor_all(
      [this](const peerhood::NeighbourEvent& event) {
        if (event.kind == peerhood::NeighbourEvent::Kind::disappeared) {
          on_device_gone(event.device.id);
        } else {
          on_device_appeared(event.device);
        }
      });

  // Devices already known to the daemon won't re-announce; probe them now.
  for (const peerhood::DeviceInfo& info : stack_.daemon().devices()) {
    on_device_appeared(info);
  }
  ++refresh_generation_;
  schedule_refresh();
  publish_attributes();
  PH_LOG(info, "app") << stack_.name() << ": '" << member_id << "' logged in";
  return ok();
}

void CommunityApp::logout() {
  store_.logout();
  publish_attributes();  // clears the advertised member
  if (monitor_ != 0) {
    stack_.daemon().unmonitor(monitor_);
    monitor_ = 0;
  }
  ++refresh_generation_;  // orphan the refresh timer
  client_.reset();
  groups_.reset();
  device_members_.clear();
}

Result<void> CommunityApp::add_interest(const std::string& interest) {
  Account* account = store_.active();
  if (account == nullptr) return Error{Errc::auth_failed, "not logged in"};
  account->add_interest(interest);
  if (groups_) groups_->set_local_interests(account->profile().interests);
  publish_attributes();
  return ok();
}

Result<void> CommunityApp::remove_interest(const std::string& interest) {
  Account* account = store_.active();
  if (account == nullptr) return Error{Errc::auth_failed, "not logged in"};
  if (auto removed = account->remove_interest(interest); !removed) return removed;
  if (groups_) groups_->set_local_interests(account->profile().interests);
  publish_attributes();
  return ok();
}

Result<void> CommunityApp::add_trusted(const std::string& member) {
  Account* account = store_.active();
  if (account == nullptr) return Error{Errc::auth_failed, "not logged in"};
  account->add_trusted(member);
  return ok();
}

Result<void> CommunityApp::remove_trusted(const std::string& member) {
  Account* account = store_.active();
  if (account == nullptr) return Error{Errc::auth_failed, "not logged in"};
  return account->remove_trusted(member);
}

Result<void> CommunityApp::share_file(const std::string& name, Bytes content) {
  Account* account = store_.active();
  if (account == nullptr) return Error{Errc::auth_failed, "not logged in"};
  account->share_file(name, std::move(content));
  return ok();
}

Result<void> CommunityApp::unshare_file(const std::string& name) {
  Account* account = store_.active();
  if (account == nullptr) return Error{Errc::auth_failed, "not logged in"};
  return account->unshare_file(name);
}

Result<void> CommunityApp::teach_synonym(const std::string& a,
                                         const std::string& b) {
  dictionary_.teach(a, b);
  if (groups_) groups_->rebuild();
  return ok();
}

Result<void> CommunityApp::join_group(const std::string& interest) {
  if (!groups_) return Error{Errc::auth_failed, "not logged in"};
  groups_->manual_join(interest);
  return ok();
}

Result<void> CommunityApp::leave_group(const std::string& interest) {
  if (!groups_) return Error{Errc::auth_failed, "not logged in"};
  return groups_->manual_leave(interest);
}

void CommunityApp::send_message(const std::string& receiver,
                                const std::string& subject,
                                const std::string& body,
                                std::function<void(Result<void>)> done) {
  if (!client_ || !logged_in()) {
    done(Error{Errc::auth_failed, "not logged in"});
    return;
  }
  const std::string sender = client_->self_member();
  client_->send_message(
      receiver, subject, body,
      [this, receiver, sender, subject, body,
       done = std::move(done)](Result<void> result) {
        if (result && logged_in() && active()->member_id() == sender) {
          active()->record_sent(
              {receiver, sender, subject, body,
               stack_.daemon().scheduler().now()});
        }
        done(std::move(result));
      });
}

Result<void> CommunityApp::save_accounts(const std::string& path) const {
  return save_to_file(store_, path);
}

Result<void> CommunityApp::load_accounts(const std::string& path) {
  auto loaded = load_from_file(path);
  if (!loaded) return loaded.error();
  logout();
  store_ = std::move(*loaded);
  return ok();
}

std::string CommunityApp::member_on(peerhood::DeviceId device) const {
  auto it = device_members_.find(device);
  return it == device_members_.end() ? std::string{} : it->second;
}

void CommunityApp::on_device_appeared(const peerhood::DeviceInfo& info) {
  if (!logged_in()) return;
  const peerhood::ServiceInfo* service =
      info.find_service(std::string(kServiceName));
  if (service == nullptr) return;
  if (config_.advertise_interests) {
    // Fast path: the neighbour publishes member + interests as service
    // attributes — no probe RPCs needed.
    auto member = service->attributes.find("member");
    auto interests = service->attributes.find("interests");
    if (member != service->attributes.end() && !member->second.empty() &&
        interests != service->attributes.end()) {
      record_peer(info.id, member->second, split(interests->second, ';'));
      return;
    }
    // The neighbour runs the thesis' plain mode; fall through to probing.
  }
  probe_peer(info.id);
}

void CommunityApp::record_peer(peerhood::DeviceId device,
                               const std::string& member,
                               const std::vector<std::string>& interests) {
  if (!logged_in() || !groups_) return;
  auto previous = device_members_.find(device);
  if (previous != device_members_.end() && previous->second != member) {
    groups_->remove_peer(previous->second);
    if (client_) client_->invalidate_member(previous->second);
  }
  device_members_[device] = member;
  groups_->on_peer(member, interests);
}

void CommunityApp::publish_attributes() {
  if (!config_.advertise_interests || !server_.running()) return;
  std::map<std::string, std::string> attributes = {{"type", "social"},
                                                   {"version", "0.2"}};
  if (const Account* account = store_.active()) {
    attributes["member"] = account->member_id();
    attributes["interests"] = join(account->profile().interests, ";");
  }
  (void)stack_.daemon().update_service_attributes(std::string(kServiceName),
                                                  std::move(attributes));
}

void CommunityApp::on_device_gone(peerhood::DeviceId id) {
  auto it = device_members_.find(id);
  if (it != device_members_.end()) {
    c_peers_gone_->inc();
    PH_LOG(info, "app") << stack_.name() << ": peer '" << it->second
                        << "' left the neighbourhood";
    if (groups_) groups_->remove_peer(it->second);
    device_members_.erase(it);
  }
  if (client_) client_->invalidate_device(id);
}

void CommunityApp::probe_peer(peerhood::DeviceId device) {
  if (!client_) return;
  c_peers_probed_->inc();
  // Two requests on the neighbour: who is logged in, and what are their
  // interests (Figure 6's "get nearby devices' interests" step).
  client_->call(
      device, proto::Request{proto::Opcode::ps_get_online_member_list,
                             client_->self_member(), "", "", {}},
      [this, device](Result<proto::Response> members) {
        if (!members || members->names.empty()) {
          if (!members) c_probe_failures_->inc();
          return;
        }
        const std::string member = members->names.front();
        client_->call(
            device,
            proto::Request{proto::Opcode::ps_get_interest_list,
                           client_->self_member(), "", "", {}},
            [this, device, member](Result<proto::Response> interests) {
              if (!interests) {
                c_probe_failures_->inc();
                return;
              }
              // The device may have switched to another profile since the
              // last probe; record_peer evicts the old identity.
              record_peer(device, member, interests->names);
            });
      });
}

void CommunityApp::schedule_refresh() {
  if (config_.peer_refresh_interval == 0) return;
  const std::uint64_t generation = refresh_generation_;
  std::weak_ptr<char> alive = alive_token_;
  const obs::prof::TagScope tag(obs::prof::Center::community_rpc);
  stack_.daemon().scheduler().schedule(
      config_.peer_refresh_interval, [this, generation, alive] {
        if (alive.expired()) return;
        if (generation != refresh_generation_ || !logged_in()) return;
        // Walk the daemon's full neighbourhood, not just already-probed
        // peers: a device whose initial probe failed (radio busy, frame
        // loss) gets another chance every refresh.
        for (const peerhood::DeviceInfo& info : stack_.daemon().devices()) {
          on_device_appeared(info);
        }
        schedule_refresh();
      });
}

}  // namespace ph::community
