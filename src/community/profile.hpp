// Profiles, accounts and the per-device profile store.
//
// Thesis §5.2.1: "It allows the user to create a profile and user can log
// in to this application with the valid username and password [...]"
// and Table 7 lists "Support for Multiple Profiles". Every device keeps
// its accounts locally — there is no central database; remote devices read
// a profile by asking its owner (PS_GETPROFILE), which is exactly what
// distinguishes this system from an SNS.
//
// An Account bundles the wire-visible ProfileData with the private state
// that never leaves the device: password, mail inbox/sent folders and the
// actual bytes of shared files.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "proto/messages.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::community {

class Account {
 public:
  Account(std::string member_id, std::string password);

  const std::string& member_id() const noexcept { return profile_.member_id; }

  /// The wire-visible profile (PS_GETPROFILE payload).
  proto::ProfileData& profile() noexcept { return profile_; }
  const proto::ProfileData& profile() const noexcept { return profile_; }

  bool check_password(std::string_view password) const {
    return password_ == password;
  }
  void set_password(std::string password) { password_ = std::move(password); }
  /// The stored credential. Like the thesis' implementation the password is
  /// kept in plain text on the trusted device (PTDs "hold high level of
  /// trust"); exposed for persistence.
  const std::string& password() const noexcept { return password_; }

  /// Wholesale profile replacement (persistence restore).
  void set_profile(proto::ProfileData profile) { profile_ = std::move(profile); }

  // --- interests ----------------------------------------------------------
  /// Adds a raw interest label; duplicates (exact string) are ignored.
  void add_interest(const std::string& interest);
  Result<void> remove_interest(const std::string& interest);

  // --- trust (Table 7 "Trusted Friends") -----------------------------------
  bool trusts(std::string_view member) const;
  void add_trusted(const std::string& member);
  Result<void> remove_trusted(const std::string& member);

  // --- comments & visitors --------------------------------------------------
  void add_comment(proto::CommentData comment);
  /// Records a profile visitor (Figure 13: "the remote server writes the
  /// name of the requesting client as the profile visitor").
  void record_visitor(const std::string& visitor);

  // --- mail ------------------------------------------------------------------
  void deliver_mail(proto::MailData mail) { inbox_.push_back(std::move(mail)); }
  void record_sent(proto::MailData mail) { sent_.push_back(std::move(mail)); }
  const std::vector<proto::MailData>& inbox() const noexcept { return inbox_; }
  const std::vector<proto::MailData>& sent() const noexcept { return sent_; }
  /// Removes one inbox message by position (1-based, as the terminal UI
  /// numbers them).
  Result<void> delete_mail(std::size_t number);

  // --- shared content ----------------------------------------------------------
  void share_file(const std::string& name, Bytes content);
  Result<void> unshare_file(const std::string& name);
  Result<Bytes> shared_file(const std::string& name) const;
  std::vector<proto::SharedItemData> shared_items() const;
  const std::map<std::string, Bytes>& shared_files() const noexcept {
    return shared_files_;
  }

 private:
  proto::ProfileData profile_;
  std::string password_;
  std::vector<proto::MailData> inbox_;
  std::vector<proto::MailData> sent_;
  std::map<std::string, Bytes> shared_files_;
};

/// All accounts on one device, with login/logout.
class ProfileStore {
 public:
  /// Creates an account; member ids are unique per device.
  Result<Account*> create_account(const std::string& member_id,
                                  const std::string& password);

  Account* find(const std::string& member_id);
  const Account* find(const std::string& member_id) const;

  /// Validates credentials and makes the account active. A previously
  /// active account is logged out first (one active user per device).
  Result<Account*> login(const std::string& member_id,
                         const std::string& password);
  void logout() { active_ = nullptr; }

  /// The logged-in account, or nullptr.
  Account* active() noexcept { return active_; }
  const Account* active() const noexcept { return active_; }

  std::vector<std::string> member_ids() const;
  std::size_t size() const noexcept { return accounts_.size(); }

 private:
  std::map<std::string, Account> accounts_;
  Account* active_ = nullptr;
};

}  // namespace ph::community
