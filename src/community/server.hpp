// CommunityServer — the server half of PeerHood Community (thesis §5.2.3.1).
//
// "Every PTD must contain the application server and server must run
// continuously. As the server is started, it registers the service named
// 'PeerHoodCommunity' into the Peerhood Daemon. The server always stays in
// the listening state for any request from the remote clients. On the
// request received from the remote client, the server analyses the request
// and packages the desired information into buffers and transmits to the
// connected client."
//
// handle() is the pure dispatch of Table 6 — request in, response out —
// and is unit-testable without any networking; start() wires it to a
// registered PeerHood service.
#pragma once

#include <functional>
#include <string>

#include "community/interests.hpp"
#include "community/profile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peerhood/library.hpp"
#include "proto/messages.hpp"
#include "util/result.hpp"

namespace ph::community {

/// The service name registered in the PHD (Figure 8).
inline constexpr std::string_view kServiceName = "PeerHoodCommunity";

class CommunityServer {
 public:
  /// `store` holds this device's accounts; `dictionary` canonicalizes
  /// interests for PS_GETINTERESTEDMEMBERLIST matching.
  CommunityServer(peerhood::PeerHood& peerhood, ProfileStore& store,
                  const SemanticDictionary& dictionary);
  ~CommunityServer();

  /// Registers the PeerHoodCommunity service and starts accepting.
  Result<void> start();
  void stop();
  bool running() const noexcept { return running_; }

  /// Pure Table 6 dispatch (no I/O): the response for one request given
  /// the current local state.
  proto::Response handle(const proto::Request& request);

  /// Typed view of the registry's `community.server.d<self>.*` counters
  /// (`requests_handled`, `sessions_accepted`, `bad_requests`).
  obs::Snapshot stats() const;

 private:
  void on_accept(peerhood::Connection connection);
  const Account* active() const { return store_.active(); }
  Account* active() { return store_.active(); }

  peerhood::PeerHood& peerhood_;
  ProfileStore& store_;
  const SemanticDictionary& dictionary_;
  bool running_ = false;
  // Registry handles (`community.server.d<self>.*`) into the medium's
  // per-world registry; the trace journal is shared the same way.
  obs::Registry* registry_ = nullptr;
  obs::Trace* trace_ = nullptr;
  std::string metric_prefix_;
  obs::Counter* c_requests_handled_ = nullptr;
  obs::Counter* c_sessions_accepted_ = nullptr;
  obs::Counter* c_bad_requests_ = nullptr;
};

}  // namespace ph::community
