#include "community/persistence.hpp"

#include <cstdio>
#include <memory>

#include "proto/codec.hpp"
#include "proto/messages.hpp"

namespace ph::community {

namespace {

constexpr std::uint32_t kMagic = 0x50484353;  // "PHCS" — PeerHood Community Store
constexpr std::uint16_t kVersion = 1;

void put_mail(proto::Writer& w, const proto::MailData& mail) {
  w.str(mail.receiver);
  w.str(mail.sender);
  w.str(mail.subject);
  w.str(mail.body);
  w.u64(mail.sent_at_us);
}

Result<proto::MailData> get_mail(proto::Reader& r) {
  proto::MailData mail;
  auto receiver = r.str();
  if (!receiver) return receiver.error();
  mail.receiver = std::move(*receiver);
  auto sender = r.str();
  if (!sender) return sender.error();
  mail.sender = std::move(*sender);
  auto subject = r.str();
  if (!subject) return subject.error();
  mail.subject = std::move(*subject);
  auto body = r.str();
  if (!body) return body.error();
  mail.body = std::move(*body);
  auto at = r.u64();
  if (!at) return at.error();
  mail.sent_at_us = *at;
  return mail;
}

void put_account(proto::Writer& w, const Account& account) {
  w.str(account.member_id());
  w.str(account.password());
  // The wire-visible profile reuses the network codec: wrap it in a
  // response encoding so we get the exact same layout and validation.
  proto::Response wrapper;
  wrapper.op = proto::Opcode::ps_get_profile;
  wrapper.profile = account.profile();
  w.bytes(proto::encode(wrapper));
  w.u32(static_cast<std::uint32_t>(account.inbox().size()));
  for (const auto& mail : account.inbox()) put_mail(w, mail);
  w.u32(static_cast<std::uint32_t>(account.sent().size()));
  for (const auto& mail : account.sent()) put_mail(w, mail);
  w.u32(static_cast<std::uint32_t>(account.shared_files().size()));
  for (const auto& [name, content] : account.shared_files()) {
    w.str(name);
    w.bytes(content);
  }
}

Result<void> get_account(proto::Reader& r, ProfileStore& store) {
  auto member_id = r.str();
  if (!member_id) return member_id.error();
  auto password = r.str();
  if (!password) return password.error();
  auto created = store.create_account(*member_id, *password);
  if (!created) return created.error();
  Account& account = **created;

  auto profile_blob = r.bytes();
  if (!profile_blob) return profile_blob.error();
  auto wrapper = proto::decode_response(*profile_blob);
  if (!wrapper) return wrapper.error();
  account.set_profile(std::move(wrapper->profile));

  auto inbox_count = r.u32();
  if (!inbox_count) return inbox_count.error();
  if (*inbox_count > r.remaining() / 4) {
    return Error{Errc::protocol_error, "implausible inbox count"};
  }
  for (std::uint32_t i = 0; i < *inbox_count; ++i) {
    auto mail = get_mail(r);
    if (!mail) return mail.error();
    account.deliver_mail(std::move(*mail));
  }
  auto sent_count = r.u32();
  if (!sent_count) return sent_count.error();
  if (*sent_count > r.remaining() / 4) {
    return Error{Errc::protocol_error, "implausible sent count"};
  }
  for (std::uint32_t i = 0; i < *sent_count; ++i) {
    auto mail = get_mail(r);
    if (!mail) return mail.error();
    account.record_sent(std::move(*mail));
  }
  auto file_count = r.u32();
  if (!file_count) return file_count.error();
  if (*file_count > r.remaining() / 4) {
    return Error{Errc::protocol_error, "implausible shared-file count"};
  }
  for (std::uint32_t i = 0; i < *file_count; ++i) {
    auto name = r.str();
    if (!name) return name.error();
    auto content = r.bytes();
    if (!content) return content.error();
    account.share_file(*name, std::move(*content));
  }
  return ok();
}

}  // namespace

Bytes serialize(const ProfileStore& store) {
  proto::Writer w;
  w.u32(kMagic);
  w.u16(kVersion);
  const auto members = store.member_ids();
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const std::string& member : members) {
    put_account(w, *store.find(member));
  }
  return std::move(w).take();
}

Result<ProfileStore> deserialize(BytesView data) {
  proto::Reader r(data);
  auto magic = r.u32();
  if (!magic) return magic.error();
  if (*magic != kMagic) {
    return Error{Errc::protocol_error, "not a PeerHood Community store"};
  }
  auto version = r.u16();
  if (!version) return version.error();
  if (*version != kVersion) {
    return Error{Errc::protocol_error,
                 "unsupported store version " + std::to_string(*version)};
  }
  auto count = r.u32();
  if (!count) return count.error();
  if (*count > r.remaining() / 4) {
    return Error{Errc::protocol_error, "implausible account count"};
  }
  ProfileStore store;
  for (std::uint32_t i = 0; i < *count; ++i) {
    if (auto loaded = get_account(r, store); !loaded) return loaded.error();
  }
  return store;
}

Result<void> save_to_file(const ProfileStore& store, const std::string& path) {
  const Bytes blob = serialize(store);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!file) {
    return Error{Errc::state_error, "cannot open for writing: " + path};
  }
  if (std::fwrite(blob.data(), 1, blob.size(), file.get()) != blob.size()) {
    return Error{Errc::state_error, "short write: " + path};
  }
  return ok();
}

Result<ProfileStore> load_from_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!file) {
    return Error{Errc::state_error, "cannot open for reading: " + path};
  }
  Bytes blob;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file.get())) > 0) {
    blob.insert(blob.end(), chunk, chunk + got);
  }
  return deserialize(blob);
}

}  // namespace ph::community
