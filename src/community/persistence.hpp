// Persistence — the thesis' on-device files.
//
// The reference implementation keeps everything in files on the PTD: "the
// server ... writes or appends the Profile comments ... into the local
// user's profile" (a "profile information file") and "writes the mail
// message in the inbox mail file". This module serializes a device's whole
// ProfileStore — accounts, passwords, interests, trust lists, comments,
// visitors, mail folders and shared file bytes — to a portable binary blob
// (the same wire codec the network uses) and back, plus filesystem
// helpers, so a device can power off and return with its community state
// intact.
#pragma once

#include <string>

#include "community/profile.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::community {

/// Serializes every account in the store (including private state).
Bytes serialize(const ProfileStore& store);

/// Rebuilds a store from serialize() output. The active login is not
/// persisted — a freshly loaded device is logged out.
Result<ProfileStore> deserialize(BytesView data);

/// Convenience file round trip.
Result<void> save_to_file(const ProfileStore& store, const std::string& path);
Result<ProfileStore> load_from_file(const std::string& path);

}  // namespace ph::community
