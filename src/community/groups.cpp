#include "community/groups.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace ph::community {

GroupEngine::GroupEngine(std::string local_member,
                         const SemanticDictionary& dictionary,
                         obs::Registry* registry, std::string metric_prefix)
    : local_member_(std::move(local_member)), dictionary_(dictionary) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::Registry>();
    registry = own_registry_.get();
  }
  registry_ = registry;
  metric_prefix_ = metric_prefix;
  c_comparisons_ = &registry->counter(metric_prefix + "comparisons");
  c_groups_formed_ = &registry->counter(metric_prefix + "groups_formed");
  c_groups_dissolved_ = &registry->counter(metric_prefix + "groups_dissolved");
  c_member_joins_ = &registry->counter(metric_prefix + "member_joins");
  c_member_leaves_ = &registry->counter(metric_prefix + "member_leaves");
  g_formed_groups_ = &registry->gauge(metric_prefix + "formed_groups");
}

void GroupEngine::refresh_formed_gauge() {
  double formed = 0;
  for (const auto& [interest, group] : groups_) {
    if (group.formed()) ++formed;
  }
  g_formed_groups_->set(formed);
}

obs::Snapshot GroupEngine::stats() const {
  return registry_->snapshot(metric_prefix_);
}

void GroupEngine::trace_event(const char* name, const std::string& interest) {
  if (trace_ == nullptr || !trace_clock_) return;
  trace_->add_event(name, trace_clock_(), trace_device_, interest);
}

std::set<std::string> GroupEngine::canonicalize(
    const std::vector<std::string>& raw, Group*) {
  std::set<std::string> out;
  for (const std::string& label : raw) {
    std::string canonical = dictionary_.canonical(label);
    if (!canonical.empty()) out.insert(std::move(canonical));
  }
  return out;
}

void GroupEngine::ensure_groups_for_local() {
  // Tracked groups: the local user's canonical interests plus manual joins.
  std::set<std::string> tracked = canonicalize(local_raw_);
  for (const std::string& manual : manual_) {
    tracked.insert(dictionary_.canonical(manual));
  }
  // Create missing groups.
  for (const std::string& interest : tracked) {
    Group& group = groups_[interest];
    group.interest = interest;
    group.members.insert(local_member_);
    for (const std::string& label : local_raw_) {
      if (dictionary_.canonical(label) == interest) group.labels.insert(label);
    }
    if (group.labels.empty()) group.labels.insert(interest);
  }
  // Drop groups that are no longer tracked.
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (tracked.contains(it->first)) {
      ++it;
      continue;
    }
    const bool was_formed = it->second.formed();
    const std::string interest = it->first;
    it = groups_.erase(it);
    if (was_formed) {
      c_groups_dissolved_->inc();
      trace_event("community.group.dissolved", interest);
      if (callbacks_.on_group_dissolved) callbacks_.on_group_dissolved(interest);
    }
  }
}

void GroupEngine::add_member(Group& group, const std::string& member) {
  if (!group.members.insert(member).second) return;
  c_member_joins_->inc();
  if (callbacks_.on_member_joined) {
    callbacks_.on_member_joined(group.interest, member);
  }
  if (group.members.size() == 2) {  // local + first remote: group forms
    c_groups_formed_->inc();
    trace_event("community.group.formed", group.interest);
    PH_LOG(info, "groups") << local_member_ << ": group '" << group.interest
                           << "' formed";
    if (callbacks_.on_group_formed) callbacks_.on_group_formed(group);
  }
}

void GroupEngine::drop_member(Group& group, const std::string& member) {
  const bool was_formed = group.formed();
  if (group.members.erase(member) == 0) return;
  c_member_leaves_->inc();
  if (callbacks_.on_member_left) {
    callbacks_.on_member_left(group.interest, member);
  }
  if (was_formed && !group.formed()) {
    c_groups_dissolved_->inc();
    trace_event("community.group.dissolved", group.interest);
    PH_LOG(info, "groups") << local_member_ << ": group '" << group.interest
                           << "' dissolved";
    if (callbacks_.on_group_dissolved) callbacks_.on_group_dissolved(group.interest);
  }
}

void GroupEngine::match_peer_against_groups(const std::string& member,
                                            PeerRecord& record) {
  for (auto& [interest, group] : groups_) {
    // One comparison per (local interest, peer interest) pair — the inner
    // loops of Figure 6.
    c_comparisons_->inc(record.raw_interests.size());
    const bool matches = record.canonical.contains(interest);
    if (matches) {
      add_member(group, member);
      for (const std::string& label : record.raw_interests) {
        if (dictionary_.canonical(label) == interest) group.labels.insert(label);
      }
    } else {
      drop_member(group, member);
    }
  }
}

void GroupEngine::set_local_interests(const std::vector<std::string>& interests) {
  local_raw_ = interests;
  ensure_groups_for_local();
  for (auto& [member, record] : peers_) {
    match_peer_against_groups(member, record);
  }
  refresh_formed_gauge();
}

void GroupEngine::on_peer(const std::string& member,
                          const std::vector<std::string>& interests) {
  if (member == local_member_) return;
  PeerRecord& record = peers_[member];
  record.raw_interests = interests;
  record.canonical = canonicalize(record.raw_interests);
  match_peer_against_groups(member, record);
  refresh_formed_gauge();
}

void GroupEngine::remove_peer(const std::string& member) {
  if (peers_.erase(member) == 0) return;
  for (auto& [interest, group] : groups_) {
    (void)interest;
    drop_member(group, member);
  }
  refresh_formed_gauge();
}

void GroupEngine::manual_join(std::string_view interest) {
  const std::string canonical = dictionary_.canonical(interest);
  if (canonical.empty()) return;
  manual_.insert(canonical);
  ensure_groups_for_local();
  auto it = groups_.find(canonical);
  if (it == groups_.end()) return;
  it->second.labels.insert(std::string(interest));
  for (auto& [member, record] : peers_) {
    c_comparisons_->inc(record.raw_interests.size());
    if (record.canonical.contains(canonical)) add_member(it->second, member);
  }
  refresh_formed_gauge();
}

Result<void> GroupEngine::manual_leave(std::string_view interest) {
  const std::string canonical = dictionary_.canonical(interest);
  if (manual_.erase(canonical) == 0) {
    return Error{Errc::no_such_group,
                 "not manually joined: " + std::string(interest)};
  }
  ensure_groups_for_local();
  refresh_formed_gauge();
  return ok();
}

void GroupEngine::rebuild() {
  // Recanonicalize everything under the (possibly newly taught) dictionary,
  // then re-derive groups; events fire from the membership diffs the
  // add/drop helpers compute.
  for (auto& [member, record] : peers_) {
    (void)member;
    record.canonical = canonicalize(record.raw_interests);
  }
  // Remap manual joins whose class got merged into another representative.
  std::set<std::string> remapped;
  for (const std::string& manual : manual_) {
    remapped.insert(dictionary_.canonical(manual));
  }
  manual_ = std::move(remapped);

  // Merge groups whose interests now share a canonical key: move members
  // into the surviving group before ensure_groups_for_local() erases the
  // stale ones, so formed/dissolved events stay truthful.
  std::map<std::string, Group> merged;
  for (auto& [interest, group] : groups_) {
    const std::string canonical = dictionary_.canonical(interest);
    Group& target = merged[canonical];
    target.interest = canonical;
    target.labels.insert(group.labels.begin(), group.labels.end());
    target.members.insert(group.members.begin(), group.members.end());
  }
  groups_ = std::move(merged);

  ensure_groups_for_local();
  for (auto& [member, record] : peers_) {
    match_peer_against_groups(member, record);
  }
  refresh_formed_gauge();
}

void GroupEngine::rescan() {
  // The batch algorithm of Figure 6: every local interest against every
  // interest of every found neighbour.
  rebuild();
}

std::vector<Group> GroupEngine::groups() const {
  std::vector<Group> out;
  out.reserve(groups_.size());
  for (const auto& [interest, group] : groups_) out.push_back(group);
  return out;
}

std::vector<Group> GroupEngine::formed_groups() const {
  std::vector<Group> out;
  for (const auto& [interest, group] : groups_) {
    if (group.formed()) out.push_back(group);
  }
  return out;
}

Result<Group> GroupEngine::group(std::string_view interest) const {
  auto it = groups_.find(dictionary_.canonical(interest));
  if (it == groups_.end()) {
    return Error{Errc::no_such_group, std::string(interest)};
  }
  return it->second;
}

std::vector<std::string> GroupEngine::members_of(std::string_view interest) const {
  auto found = group(interest);
  if (!found) return {};
  return {found->members.begin(), found->members.end()};
}

std::vector<std::string> GroupEngine::tracked_interests() const {
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [interest, group] : groups_) {
    (void)group;
    out.push_back(interest);
  }
  return out;
}

}  // namespace ph::community
