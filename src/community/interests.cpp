#include "community/interests.hpp"

#include "util/strings.hpp"

namespace ph::community {

namespace {

/// Walks parent links to the root, compressing the path.
const std::string& root_of(std::map<std::string, std::string>& parent,
                           const std::string& start) {
  std::string current = start;
  while (parent.at(current) != current) current = parent.at(current);
  // Path compression: repoint every node on the walk at the root.
  std::string walker = start;
  while (parent.at(walker) != current) {
    std::string next = parent.at(walker);
    parent[walker] = current;
    walker = std::move(next);
  }
  return parent.find(current)->first;
}

}  // namespace

void SemanticDictionary::teach(std::string_view a, std::string_view b) {
  std::string na = normalize_interest(a);
  std::string nb = normalize_interest(b);
  if (na.empty() || nb.empty()) return;
  parent_.try_emplace(na, na);
  parent_.try_emplace(nb, nb);
  std::string ra = root_of(parent_, na);
  std::string rb = root_of(parent_, nb);
  if (ra == rb) return;
  ++merges_;
  // The lexicographically smaller term becomes the root, keeping
  // canonical() independent of teaching order.
  if (rb < ra) std::swap(ra, rb);
  parent_[rb] = ra;
}

std::string SemanticDictionary::canonical(std::string_view term) const {
  std::string normalized = normalize_interest(term);
  auto it = parent_.find(normalized);
  if (it == parent_.end()) return normalized;
  return root_of(parent_, normalized);
}

bool SemanticDictionary::same(std::string_view a, std::string_view b) const {
  return canonical(a) == canonical(b);
}

std::vector<std::string> SemanticDictionary::synonyms(std::string_view term) const {
  std::string target = canonical(term);
  std::vector<std::string> out;
  for (const auto& [member, parent] : parent_) {
    (void)parent;
    if (root_of(parent_, member) == target) out.push_back(member);
  }
  if (out.empty()) out.push_back(std::move(target));
  return out;
}

const std::string* SemanticDictionary::find_root(const std::string& term) const {
  auto it = parent_.find(term);
  if (it == parent_.end()) return nullptr;
  return &root_of(parent_, term);
}

}  // namespace ph::community
