#include "transport/socket_transport.hpp"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/ops_server.hpp"
#include "obs/prof.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "proto/frame.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ph::transport {

namespace {

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

void append_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(Bytes& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void append_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

std::uint16_t read_u16(BytesView data) {
  return static_cast<std::uint16_t>(data[0] |
                                    (static_cast<std::uint16_t>(data[1]) << 8));
}

std::uint32_t read_u32(BytesView data) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data[i];
  return v;
}

std::uint64_t read_u64(BytesView data) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data[i];
  return v;
}

/// One length-prefixed stream message: u32 frame length, then the frame.
Bytes make_stream_message(proto::FrameKind kind, BytesView payload) {
  const Bytes frame = proto::encode_frame(kind, payload);
  Bytes out;
  out.reserve(4 + frame.size());
  append_u32(out, static_cast<std::uint32_t>(frame.size()));
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

/// Upper bound on one stream message — a corrupt length prefix must not
/// look like a gigabyte allocation.
constexpr std::uint32_t kMaxStreamFrame = 16u << 20;

int make_socket(int type) {
  return ::socket(AF_UNIX, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PH_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "socket_dir path too long for sockaddr_un");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

std::string endpoint_path(const std::string& dir, DeviceId device,
                          net::Technology tech, const char* plane) {
  return dir + "/d" + std::to_string(device) + ".t" +
         std::to_string(static_cast<int>(tech)) + "." + plane;
}

/// Parses "d<id>.t<tech>.dgram" back into a device id; 0 when `name` is
/// something else (a stream socket, a stray file).
DeviceId parse_dgram_entry(const std::string& name, net::Technology tech) {
  const std::string suffix =
      ".t" + std::to_string(static_cast<int>(tech)) + ".dgram";
  if (name.size() <= 1 + suffix.size() || name[0] != 'd') return net::kInvalidNode;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return net::kInvalidNode;
  }
  const std::string digits = name.substr(1, name.size() - 1 - suffix.size());
  if (digits.empty()) return net::kInvalidNode;
  DeviceId id = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return net::kInvalidNode;
    id = id * 10 + static_cast<DeviceId>(c - '0');
  }
  return id;
}

}  // namespace

// ---------------------------------------------------------------------------
// WallScheduler — virtual microseconds over the wall clock + epoll pump.
// ---------------------------------------------------------------------------

class SocketTransport::WallScheduler final : public Scheduler {
 public:
  WallScheduler(SocketTransport& transport, double time_scale)
      : transport_(transport),
        scale_(time_scale > 0.0 ? time_scale : 1.0),
        start_(std::chrono::steady_clock::now()) {}

  sim::Time now() const override {
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    auto t = static_cast<sim::Time>(static_cast<double>(wall) * scale_);
    // Monotonic even under floating-point jitter.
    if (t < last_now_) t = last_now_;
    last_now_ = t;
    return t;
  }

  sim::EventId schedule(sim::Duration delay, sim::EventFn fn) override {
    const sim::EventId id = ++next_id_;
    const sim::Time due = now() + delay;
    // Same tag plumbing as the simulated kernels: a pending TagScope wins,
    // otherwise the timer inherits the tag of the timer being dispatched.
    timers_.emplace(std::make_pair(due, id),
                    Timer{std::move(fn), obs::prof::effective_tag(current_tag_)});
    due_.emplace(id, due);
    return id;
  }

  bool cancel(sim::EventId id) override {
    auto it = due_.find(id);
    if (it == due_.end()) return false;
    timers_.erase(std::make_pair(it->second, id));
    due_.erase(it);
    return true;
  }

  bool pending(sim::EventId id) const override { return due_.contains(id); }

  /// Alternates running due timers with epoll waits whose wall timeout is
  /// the earlier of `until` and the next timer, both mapped back through
  /// the time scale. Socket readiness wakes the wait early, so I/O is
  /// handled as the kernel delivers it, not on timer granularity.
  void run_until(sim::Time until) override {
    for (;;) {
      while (!timers_.empty() && timers_.begin()->first.first <= now()) {
        auto node = timers_.extract(timers_.begin());
        due_.erase(node.key().second);
        Timer timer = std::move(node.mapped());
        // Loop lag: how far past its due point the timer actually fired,
        // reported in WALL microseconds (virtual lag unscaled). A loaded
        // or stalled loop shows up here before anything times out.
        const sim::Time lag_virtual = now() - node.key().first;
        transport_.h_loop_lag_->observe(static_cast<double>(lag_virtual) /
                                        scale_);
        const std::uint64_t t0 = transport_.wall_clock_.now();
        current_tag_ = timer.tag;
        {
          const obs::prof::Scope span(timer.tag);
          timer.fn();
        }
        current_tag_ = 0;
        transport_.h_loop_dispatch_->observe(
            static_cast<double>(transport_.wall_clock_.now() - t0));
      }
      const sim::Time current = now();
      if (current >= until) return;
      sim::Time wake = until;
      if (!timers_.empty()) {
        wake = std::min(wake, timers_.begin()->first.first);
      }
      int timeout_ms = 0;
      if (wake > current) {
        const double wall_us = static_cast<double>(wake - current) / scale_;
        timeout_ms = static_cast<int>(wall_us / 1000.0) + 1;
        timeout_ms = std::clamp(timeout_ms, 1, 1000);
      }
      transport_.pump_epoll(timeout_ms);
    }
  }

 private:
  struct Timer {
    sim::EventFn fn;
    std::uint8_t tag = 0;
  };

  SocketTransport& transport_;
  double scale_;
  std::chrono::steady_clock::time_point start_;
  mutable sim::Time last_now_ = 0;
  sim::EventId next_id_ = 0;
  std::uint8_t current_tag_ = 0;  ///< tag of the timer being dispatched
  std::map<std::pair<sim::Time, sim::EventId>, Timer> timers_;
  std::map<sim::EventId, sim::Time> due_;
};

// ---------------------------------------------------------------------------
// SocketChannelState — one established SOCK_STREAM channel end.
// ---------------------------------------------------------------------------

namespace {

class SocketChannelState final
    : public detail::ChannelState,
      public std::enable_shared_from_this<SocketChannelState> {
 public:
  SocketChannelState(SocketTransport& transport, int fd, DeviceId remote,
                     net::Technology tech)
      : transport_(transport), fd_(fd), remote_(remote), tech_(tech) {}

  ~SocketChannelState() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool chan_open() const override { return open_; }
  DeviceId chan_remote() const override { return remote_; }
  net::Technology chan_technology() const override { return tech_; }
  void chan_on_receive(std::function<void(BytesView)> handler) override {
    on_receive_ = std::move(handler);
    // Frames may already be buffered (handshake leftover, or data that
    // arrived before the handler was installed) — drain them now that
    // someone can receive. Deferred so attaching a handler mid-dispatch
    // never re-enters the delivery loop.
    schedule_drain();
  }
  void chan_on_break(std::function<void()> handler) override {
    on_break_ = std::move(handler);
  }
  double chan_signal() const override { return open_ ? 1.0 : 0.0; }

  void chan_send(BytesView payload) override;
  void chan_close() override;

  /// Registers with the epoll loop. The fd handler keeps the state alive
  /// (shared_ptr capture) until the channel closes or breaks — like a
  /// simulated link, an established channel outlives dropped user handles.
  void start(Bytes leftover);

  /// Forced break from outside the I/O path (endpoint powered off).
  void force_break() { do_break(); }

  /// Queues a transport-internal RTT probe carrying the sender's wall
  /// clock; the peer echoes it back as channel_pong and the receive path
  /// observes (now - echo) into transport.channel_rtt_us. Invisible to
  /// the layers above — probes never reach the receive handler.
  void send_ping(std::uint64_t wall_us);

  /// Bytes queued but not yet written / received but not yet delivered —
  /// the periodic scrape sums these into the per-device queue gauges.
  std::size_t send_queue_bytes() const noexcept {
    return out_buf_.size() - out_pos_;
  }
  std::size_t recv_queue_bytes() const noexcept { return in_buf_.size(); }

 private:
  void handle_io(std::uint32_t events);
  void deliver_frames();
  void schedule_drain();
  void flush();
  void do_break();

  SocketTransport& transport_;
  int fd_;
  DeviceId remote_;
  net::Technology tech_;
  bool open_ = true;
  bool want_write_ = false;
  bool peer_gone_ = false;     // EOF/hard error seen; break after delivery
  bool drain_pending_ = false; // a schedule(0) drain is already queued
  Bytes in_buf_;
  Bytes out_buf_;
  std::size_t out_pos_ = 0;
  std::function<void(BytesView)> on_receive_;
  std::function<void()> on_break_;
};

void SocketChannelState::chan_send(BytesView payload) {
  // Silently discarded when closed, like a closed simulated link; after
  // EOF the peer is gone and a write would EPIPE-break the channel before
  // its buffered tail frames were delivered.
  if (!open_ || peer_gone_) return;
  const Bytes msg = make_stream_message(proto::FrameKind::channel_data, payload);
  out_buf_.insert(out_buf_.end(), msg.begin(), msg.end());
  transport_.note_channel_send(payload.size());
  flush();
}

void SocketChannelState::send_ping(std::uint64_t wall_us) {
  if (!open_ || peer_gone_) return;
  Bytes stamp;
  append_u64(stamp, wall_us);
  const Bytes msg = make_stream_message(proto::FrameKind::channel_ping, stamp);
  out_buf_.insert(out_buf_.end(), msg.begin(), msg.end());
  transport_.note_rtt_probe();
  flush();
}

void SocketChannelState::flush() {
  while (open_ && out_pos_ < out_buf_.size()) {
    const std::size_t remaining = out_buf_.size() - out_pos_;
    const ssize_t n =
        ::send(fd_, out_buf_.data() + out_pos_, remaining, MSG_NOSIGNAL);
    if (n > 0) {
      if (static_cast<std::size_t>(n) < remaining) {
        transport_.note_partial_write();
      }
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      transport_.note_backpressure();
      if (!want_write_) {
        want_write_ = true;
        transport_.rearm_fd(fd_, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    do_break();
    return;
  }
  if (out_pos_ >= out_buf_.size()) {
    out_buf_.clear();
    out_pos_ = 0;
    if (want_write_) {
      want_write_ = false;
      if (open_) transport_.rearm_fd(fd_, EPOLLIN);
    }
  }
}

void SocketChannelState::start(Bytes leftover) {
  in_buf_ = std::move(leftover);
  auto self = shared_from_this();
  transport_.watch_fd(fd_, EPOLLIN,
                      [self](std::uint32_t events) { self->handle_io(events); });
  // Bytes that rode in behind the handshake frame are already ours, but the
  // Channel has not reached the caller yet, so no receive handler can be
  // installed. deliver_frames never consumes data frames without one;
  // chan_on_receive schedules the drain once the caller attaches.
}

void SocketChannelState::handle_io(std::uint32_t events) {
  if (!open_) return;
  if (events & EPOLLOUT) flush();
  if (!open_) return;  // flush may have hit a hard error and broken us
  // EPOLLERR/EPOLLHUP also take the read path: recv drains whatever the
  // peer sent before resetting, then reports EOF, which breaks the channel.
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        in_buf_.insert(in_buf_.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error — the peer is gone, but complete frames it sent
      // before closing are already in in_buf_ and must be delivered in
      // order before the break (a graceful send-then-close must not lose
      // its tail, nor surface as connection_lost).
      peer_gone_ = true;
      break;
    }
    deliver_frames();
    if (open_ && peer_gone_) {
      // Break deferred: data frames are buffered but no receive handler is
      // installed yet. Nothing further can arrive after EOF, and epoll
      // reports HUP unconditionally (level-triggered), so stop watching the
      // dead fd; chan_on_receive's drain delivers the tail and breaks.
      transport_.unwatch_fd(fd_);
    }
  }
}

/// Parses and delivers every complete length-prefixed frame, in order.
/// A data frame is never consumed while no receive handler is installed —
/// it stays buffered until chan_on_receive drains it — preserving the
/// exactly-once in-order contract. Once the peer is gone the channel
/// breaks only after everything deliverable has been delivered.
void SocketChannelState::deliver_frames() {
  std::size_t pos = 0;
  bool stalled = false;
  while (open_ && in_buf_.size() - pos >= 4) {
    const std::uint32_t len = read_u32(BytesView(in_buf_).subspan(pos, 4));
    if (len > kMaxStreamFrame) {
      do_break();
      return;
    }
    if (in_buf_.size() - pos - 4 < len) break;
    const BytesView frame_bytes = BytesView(in_buf_).subspan(pos + 4, len);
    auto frame = proto::decode_frame(frame_bytes);
    // RTT probes are transport-internal: consumed here, before the
    // no-handler stall check, never surfaced to the receive handler.
    if (frame && frame->kind == proto::FrameKind::channel_ping) {
      pos += 4 + len;
      if (frame->payload.size() >= 8 && !peer_gone_) {
        const Bytes pong = make_stream_message(proto::FrameKind::channel_pong,
                                               frame->payload.subspan(0, 8));
        out_buf_.insert(out_buf_.end(), pong.begin(), pong.end());
        flush();
      }
      continue;
    }
    if (frame && frame->kind == proto::FrameKind::channel_pong) {
      pos += 4 + len;
      if (frame->payload.size() >= 8) {
        const std::uint64_t echoed = read_u64(frame->payload.subspan(0, 8));
        const std::uint64_t now = transport_.wall_now_us();
        if (now >= echoed) transport_.note_rtt_sample(now - echoed);
      }
      continue;
    }
    if (frame && frame->kind == proto::FrameKind::channel_data &&
        !on_receive_) {
      stalled = true;  // keep buffered until a handler is installed
      break;
    }
    pos += 4 + len;
    if (!frame || frame->kind != proto::FrameKind::channel_data) {
      transport_.note_bad_frame();
      continue;
    }
    transport_.note_channel_receive(frame->payload.size());
    // Invoke a copy: the handler may replace on_receive_ from inside the
    // call (session handshake → attach_channel), which would otherwise
    // destroy the lambda mid-execution.
    auto handler = on_receive_;
    handler(frame->payload);
  }
  if (pos > 0) in_buf_.erase(in_buf_.begin(), in_buf_.begin() + pos);
  if (open_ && peer_gone_ && !stalled) do_break();
}

void SocketChannelState::schedule_drain() {
  if (!open_ || drain_pending_ || !on_receive_) return;
  if (in_buf_.empty() && !peer_gone_) return;
  drain_pending_ = true;
  auto self = shared_from_this();
  transport_.scheduler().schedule(0, [self]() {
    self->drain_pending_ = false;
    if (self->open_) self->deliver_frames();
  });
}

void SocketChannelState::chan_close() {
  if (!open_) return;
  open_ = false;
  // Push out whatever is queued without blocking; the peer then sees EOF.
  while (out_pos_ < out_buf_.size()) {
    const ssize_t n = ::send(fd_, out_buf_.data() + out_pos_,
                             out_buf_.size() - out_pos_, MSG_NOSIGNAL);
    if (n <= 0) break;
    out_pos_ += static_cast<std::size_t>(n);
  }
  transport_.unwatch_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  on_receive_ = nullptr;
  on_break_ = nullptr;  // local close is not a break
}

void SocketChannelState::do_break() {
  if (!open_) return;
  open_ = false;
  transport_.unwatch_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  transport_.note_channel_break();
  auto handler = std::move(on_break_);
  on_break_ = nullptr;
  on_receive_ = nullptr;
  if (handler) handler();
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketEndpoint — one device × technology attachment point.
// ---------------------------------------------------------------------------

class SocketTransport::SocketEndpoint final : public Endpoint {
 public:
  SocketEndpoint(SocketTransport& transport, DeviceId device,
                 net::TechProfile profile)
      : t_(transport), device_(device), profile_(std::move(profile)) {
    bring_up();
  }

  ~SocketEndpoint() override {
    tear_down(/*notify=*/false);  // silent, like tearing down a Medium
  }

  DeviceId device() const override { return device_; }
  const net::TechProfile& profile() const override { return profile_; }

  void set_powered(bool on) override {
    if (powered_ == on) return;
    powered_ = on;
    if (on) {
      bring_up();
    } else {
      tear_down(/*notify=*/true);
    }
  }
  bool powered() const override { return powered_; }

  void start_inquiry(InquiryHandler done) override;
  void bind(net::Port port, DatagramHandler handler) override {
    dgram_handlers_[port] = std::move(handler);
  }
  void unbind(net::Port port) override { dgram_handlers_.erase(port); }
  void send_datagram(DeviceId dst, net::Port port, BytesView payload) override;
  void broadcast_datagram(net::Port port, BytesView payload) override;
  void listen(net::Port port, AcceptHandler on_accept) override {
    listeners_[port] = std::move(on_accept);
  }
  void stop_listen(net::Port port) override { listeners_.erase(port); }
  void connect(DeviceId dst, net::Port port, ConnectHandler done) override;
  double signal_to(DeviceId dst) const override;

  std::size_t open_channel_count() const {
    std::size_t n = 0;
    for (const auto& weak : channels_) {
      if (auto ch = weak.lock(); ch && ch->chan_open()) ++n;
    }
    return n;
  }

  /// Telemetry scrape over every live channel: send an RTT probe and sum
  /// the queue depths into the caller's per-device accumulators. Channels
  /// are pinned first — a probe's flush may break a channel, whose break
  /// handler may open new ones and reshape channels_ under an iterator.
  void scrape_channels(std::uint64_t wall_us, std::size_t& send_bytes,
                       std::size_t& recv_bytes) {
    std::vector<std::shared_ptr<SocketChannelState>> live;
    live.reserve(channels_.size());
    for (const auto& weak : channels_) {
      if (auto ch = weak.lock(); ch && ch->chan_open()) {
        live.push_back(std::move(ch));
      }
    }
    for (const auto& ch : live) {
      ch->send_ping(wall_us);
      send_bytes += ch->send_queue_bytes();
      recv_bytes += ch->recv_queue_bytes();
    }
  }

 private:
  /// An outgoing connect between ::connect(2) and channel_accept/reject.
  struct PendingConn {
    int fd = -1;
    DeviceId dst = net::kInvalidNode;
    ConnectHandler done;
    Bytes buf;
    sim::EventId timeout = 0;
    std::uint64_t started_wall = 0;  ///< handshake latency start stamp
  };
  /// An accepted stream fd waiting for its channel_open frame.
  struct PendingAccept {
    int fd = -1;
    Bytes buf;
    sim::EventId timeout = 0;
    std::uint64_t started_wall = 0;
  };

  void bring_up();
  void tear_down(bool notify);
  void handle_dgram_readable();
  void handle_listen_readable();
  void settle_accept(int fd);
  void drop_accept(int fd);
  void settle_connect(int fd);
  void fail_connect(int fd, Error error);
  std::vector<DeviceId> scan_peers() const;
  std::shared_ptr<SocketChannelState> adopt(int fd, DeviceId remote,
                                            Bytes leftover);

  SocketTransport& t_;
  DeviceId device_;
  net::TechProfile profile_;
  bool powered_ = true;
  int dgram_fd_ = -1;
  int listen_fd_ = -1;
  std::map<net::Port, DatagramHandler> dgram_handlers_;
  std::map<net::Port, AcceptHandler> listeners_;
  std::map<int, PendingConn> pending_conns_;
  std::map<int, PendingAccept> pending_accepts_;
  std::vector<std::weak_ptr<SocketChannelState>> channels_;
};

void SocketTransport::SocketEndpoint::bring_up() {
  const std::string dpath = endpoint_path(t_.dir_, device_, profile_.tech, "dgram");
  const std::string spath = endpoint_path(t_.dir_, device_, profile_.tech, "stream");
  ::unlink(dpath.c_str());
  ::unlink(spath.c_str());

  dgram_fd_ = make_socket(SOCK_DGRAM);
  PH_CHECK_MSG(dgram_fd_ >= 0, "socket(AF_UNIX, SOCK_DGRAM) failed");
  sockaddr_un daddr = make_addr(dpath);
  PH_CHECK_MSG(::bind(dgram_fd_, reinterpret_cast<sockaddr*>(&daddr),
                      sizeof(daddr)) == 0,
               "bind() of datagram socket failed");
  t_.watch_fd(dgram_fd_, EPOLLIN,
              [this](std::uint32_t) { handle_dgram_readable(); });

  listen_fd_ = make_socket(SOCK_STREAM);
  PH_CHECK_MSG(listen_fd_ >= 0, "socket(AF_UNIX, SOCK_STREAM) failed");
  sockaddr_un saddr = make_addr(spath);
  PH_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&saddr),
                      sizeof(saddr)) == 0,
               "bind() of stream socket failed");
  PH_CHECK_MSG(::listen(listen_fd_, 64) == 0, "listen() failed");
  t_.watch_fd(listen_fd_, EPOLLIN,
              [this](std::uint32_t) { handle_listen_readable(); });
}

void SocketTransport::SocketEndpoint::tear_down(bool notify) {
  if (dgram_fd_ >= 0) {
    t_.unwatch_fd(dgram_fd_);
    ::close(dgram_fd_);
    dgram_fd_ = -1;
    ::unlink(endpoint_path(t_.dir_, device_, profile_.tech, "dgram").c_str());
  }
  if (listen_fd_ >= 0) {
    t_.unwatch_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(endpoint_path(t_.dir_, device_, profile_.tech, "stream").c_str());
  }
  while (!pending_accepts_.empty()) drop_accept(pending_accepts_.begin()->first);
  while (!pending_conns_.empty()) {
    fail_connect(pending_conns_.begin()->first,
                 Error{Errc::connect_failed, "local endpoint powered off"});
  }
  // Break (or silently drop) every live channel. force_break unregisters
  // the fd handler, releasing the loop's owning reference.
  auto channels = std::move(channels_);
  channels_.clear();
  for (auto& weak : channels) {
    if (auto ch = weak.lock()) {
      if (notify) {
        ch->force_break();
      } else {
        ch->chan_close();
      }
    }
  }
}

void SocketTransport::SocketEndpoint::handle_dgram_readable() {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(dgram_fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    auto frame = proto::decode_frame(BytesView(buf, static_cast<std::size_t>(n)));
    if (!frame || frame->kind != proto::FrameKind::datagram ||
        frame->payload.size() < 6) {
      t_.note_bad_frame();
      continue;
    }
    const DeviceId src = read_u32(frame->payload.subspan(0, 4));
    const net::Port port = read_u16(frame->payload.subspan(4, 2));
    t_.metrics_.datagrams_received->inc();
    auto it = dgram_handlers_.find(port);
    if (it == dgram_handlers_.end()) continue;
    // Copy the handler: it may rebind (or unbind) this very port.
    DatagramHandler handler = it->second;
    handler(src, frame->payload.subspan(6));
  }
}

void SocketTransport::SocketEndpoint::send_datagram(DeviceId dst, net::Port port,
                                                    BytesView payload) {
  if (!powered_) return;
  Bytes body;
  body.reserve(6 + payload.size());
  append_u32(body, device_);  // src
  append_u16(body, port);
  body.insert(body.end(), payload.begin(), payload.end());
  const Bytes frame = proto::encode_frame(proto::FrameKind::datagram, body);
  const std::string path = endpoint_path(t_.dir_, dst, profile_.tech, "dgram");
  sockaddr_un addr = make_addr(path);
  // Fire and forget: an absent or unpowered peer just loses the frame,
  // exactly the unreliable-datagram contract.
  (void)::sendto(dgram_fd_, frame.data(), frame.size(), MSG_NOSIGNAL,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  t_.metrics_.datagrams_sent->inc();
  t_.metrics_.datagram_bytes->inc(payload.size());
}

void SocketTransport::SocketEndpoint::broadcast_datagram(net::Port port,
                                                         BytesView payload) {
  if (!powered_ || !profile_.supports_broadcast) return;
  for (DeviceId peer : scan_peers()) {
    send_datagram(peer, port, payload);
  }
}

std::vector<DeviceId> SocketTransport::SocketEndpoint::scan_peers() const {
  std::vector<DeviceId> found;
  DIR* dir = ::opendir(t_.dir_.c_str());
  if (dir == nullptr) return found;
  while (dirent* entry = ::readdir(dir)) {
    const DeviceId id = parse_dgram_entry(entry->d_name, profile_.tech);
    if (id != net::kInvalidNode && id != device_) found.push_back(id);
  }
  ::closedir(dir);
  std::sort(found.begin(), found.end());
  return found;
}

void SocketTransport::SocketEndpoint::start_inquiry(InquiryHandler done) {
  // The scan takes the technology's inquiry duration (virtual time), then
  // reports whoever has a datagram socket in the rendezvous directory —
  // the socket substrate's "in radio range and answering".
  t_.scheduler_->schedule(
      profile_.inquiry_duration, [this, done = std::move(done)]() {
        if (!powered_) {
          done({});
          return;
        }
        std::vector<DeviceId> found;
        for (DeviceId peer : scan_peers()) {
          if (profile_.inquiry_detect_prob >= 1.0 ||
              t_.rng_.chance(profile_.inquiry_detect_prob)) {
            found.push_back(peer);
          }
        }
        done(std::move(found));
      });
}

double SocketTransport::SocketEndpoint::signal_to(DeviceId dst) const {
  if (!powered_) return 0.0;
  const std::string path = endpoint_path(t_.dir_, dst, profile_.tech, "dgram");
  return ::access(path.c_str(), F_OK) == 0 ? 1.0 : 0.0;
}

std::shared_ptr<SocketChannelState> SocketTransport::SocketEndpoint::adopt(
    int fd, DeviceId remote, Bytes leftover) {
  auto state =
      std::make_shared<SocketChannelState>(t_, fd, remote, profile_.tech);
  state->start(std::move(leftover));
  std::erase_if(channels_, [](const auto& weak) { return weak.expired(); });
  channels_.push_back(state);
  return state;
}

// --- accept side -----------------------------------------------------------

void SocketTransport::SocketEndpoint::handle_listen_readable() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error — epoll will re-notify
    }
    auto [it, inserted] = pending_accepts_.emplace(fd, PendingAccept{});
    it->second.fd = fd;
    it->second.started_wall = t_.wall_now_us();
    // A peer that connects but never sends channel_open must not pin the
    // fd forever.
    it->second.timeout = t_.scheduler_->schedule(
        sim::seconds(10), [this, fd]() { drop_accept(fd); });
    t_.watch_fd(fd, EPOLLIN, [this, fd](std::uint32_t) { settle_accept(fd); });
  }
}

void SocketTransport::SocketEndpoint::drop_accept(int fd) {
  auto it = pending_accepts_.find(fd);
  if (it == pending_accepts_.end()) return;
  t_.scheduler_->cancel(it->second.timeout);
  t_.unwatch_fd(fd);
  ::close(fd);
  pending_accepts_.erase(it);
}

void SocketTransport::SocketEndpoint::settle_accept(int fd) {
  auto it = pending_accepts_.find(fd);
  if (it == pending_accepts_.end()) return;
  PendingAccept& pa = it->second;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      pa.buf.insert(pa.buf.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_accept(fd);  // peer vanished before the handshake
    return;
  }
  if (pa.buf.size() < 4) return;
  const std::uint32_t len = read_u32(BytesView(pa.buf).subspan(0, 4));
  if (len > kMaxStreamFrame) {
    drop_accept(fd);
    return;
  }
  if (pa.buf.size() - 4 < len) return;  // handshake frame still partial
  auto frame = proto::decode_frame(BytesView(pa.buf).subspan(4, len));
  Bytes leftover(pa.buf.begin() + 4 + len, pa.buf.end());
  if (!frame || frame->kind != proto::FrameKind::channel_open ||
      frame->payload.size() < 6) {
    t_.note_bad_frame();
    drop_accept(fd);
    return;
  }
  const DeviceId src = read_u32(frame->payload.subspan(0, 4));
  const net::Port port = read_u16(frame->payload.subspan(4, 2));
  auto listener = listeners_.find(port);
  if (!powered_ || listener == listeners_.end()) {
    Bytes body;
    body.push_back(static_cast<std::uint8_t>(Errc::connect_failed));
    const Bytes reply =
        make_stream_message(proto::FrameKind::channel_reject, body);
    (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
    drop_accept(fd);
    return;
  }
  Bytes body;
  append_u32(body, device_);
  const Bytes reply = make_stream_message(proto::FrameKind::channel_accept, body);
  (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
  // Promote the fd: cancel bookkeeping first, then hand it to a channel.
  t_.scheduler_->cancel(pa.timeout);
  t_.unwatch_fd(fd);
  AcceptHandler handler = listener->second;  // copy — may stop_listen inside
  const std::uint64_t started = pa.started_wall;
  pending_accepts_.erase(it);
  auto state = adopt(fd, src, std::move(leftover));
  t_.metrics_.channels_accepted->inc();
  t_.metrics_.handshake_us->observe(
      static_cast<double>(t_.wall_now_us() - started));
  handler(Channel(state));
}

// --- connect side ----------------------------------------------------------

void SocketTransport::SocketEndpoint::connect(DeviceId dst, net::Port port,
                                              ConnectHandler done) {
  if (!powered_) {
    t_.scheduler_->schedule(0, [done = std::move(done)]() {
      done(Error{Errc::connect_failed, "local adapter powered off"});
    });
    return;
  }
  const int fd = make_socket(SOCK_STREAM);
  PH_CHECK_MSG(fd >= 0, "socket(AF_UNIX, SOCK_STREAM) failed");
  const std::string path = endpoint_path(t_.dir_, dst, profile_.tech, "stream");
  sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const Errc code = (errno == ENOENT || errno == ECONNREFUSED)
                          ? Errc::device_unreachable
                          : Errc::connect_failed;
    ::close(fd);
    t_.scheduler_->schedule(0, [done = std::move(done), code, dst]() {
      done(Error{code, "device " + std::to_string(dst) + ": " +
                           std::string(to_string(code))});
    });
    return;
  }
  Bytes body;
  append_u32(body, device_);
  append_u16(body, port);
  const Bytes open_msg =
      make_stream_message(proto::FrameKind::channel_open, body);
  (void)::send(fd, open_msg.data(), open_msg.size(), MSG_NOSIGNAL);

  auto [it, inserted] = pending_conns_.emplace(fd, PendingConn{});
  it->second.fd = fd;
  it->second.dst = dst;
  it->second.done = std::move(done);
  it->second.started_wall = t_.wall_now_us();
  it->second.timeout = t_.scheduler_->schedule(
      profile_.connect_latency + sim::seconds(10), [this, fd]() {
        fail_connect(fd, Error{Errc::timeout, "channel open timed out"});
      });
  t_.watch_fd(fd, EPOLLIN, [this, fd](std::uint32_t) { settle_connect(fd); });
}

void SocketTransport::SocketEndpoint::fail_connect(int fd, Error error) {
  auto it = pending_conns_.find(fd);
  if (it == pending_conns_.end()) return;
  ConnectHandler done = std::move(it->second.done);
  t_.scheduler_->cancel(it->second.timeout);
  t_.unwatch_fd(fd);
  ::close(fd);
  pending_conns_.erase(it);
  done(std::move(error));
}

void SocketTransport::SocketEndpoint::settle_connect(int fd) {
  auto it = pending_conns_.find(fd);
  if (it == pending_conns_.end()) return;
  PendingConn& pc = it->second;
  std::uint8_t buf[4096];
  // On EOF the peer may already have written a complete reject/accept frame
  // before closing (reject-then-close is the normal refusal shape), so parse
  // the buffered bytes first and only report unreachable if they are short.
  bool eof = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      pc.buf.insert(pc.buf.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    eof = true;
    break;
  }
  const auto incomplete = [&] {
    if (eof) {
      fail_connect(fd, Error{Errc::device_unreachable,
                             "peer closed during channel open"});
    }
  };
  if (pc.buf.size() < 4) return incomplete();
  const std::uint32_t len = read_u32(BytesView(pc.buf).subspan(0, 4));
  if (len > kMaxStreamFrame) {
    fail_connect(fd, Error{Errc::protocol_error, "oversized handshake reply"});
    return;
  }
  if (pc.buf.size() - 4 < len) return incomplete();
  auto frame = proto::decode_frame(BytesView(pc.buf).subspan(4, len));
  if (!frame) {
    t_.note_bad_frame();
    fail_connect(fd, Error{Errc::protocol_error, "bad handshake reply"});
    return;
  }
  if (frame->kind == proto::FrameKind::channel_reject) {
    const Errc code = frame->payload.empty()
                          ? Errc::connect_failed
                          : static_cast<Errc>(std::min<std::uint8_t>(
                                frame->payload[0],
                                static_cast<std::uint8_t>(kMaxErrc)));
    fail_connect(fd, Error{code == Errc::ok ? Errc::connect_failed : code,
                           "peer rejected channel open"});
    return;
  }
  if (frame->kind != proto::FrameKind::channel_accept) {
    fail_connect(fd, Error{Errc::protocol_error, "unexpected handshake reply"});
    return;
  }
  Bytes leftover(pc.buf.begin() + 4 + len, pc.buf.end());
  ConnectHandler done = std::move(pc.done);
  const DeviceId dst = pc.dst;
  const std::uint64_t started = pc.started_wall;
  t_.scheduler_->cancel(pc.timeout);
  t_.unwatch_fd(fd);
  pending_conns_.erase(it);
  auto state = adopt(fd, dst, std::move(leftover));
  t_.metrics_.channels_opened->inc();
  t_.metrics_.handshake_us->observe(
      static_cast<double>(t_.wall_now_us() - started));
  done(Channel(state));
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      next_device_(config_.first_device_id == net::kInvalidNode
                       ? 1
                       : config_.first_device_id) {
  if (config_.socket_dir.empty()) {
    char tmpl[] = "/tmp/ph_socket_XXXXXX";
    PH_CHECK_MSG(::mkdtemp(tmpl) != nullptr, "mkdtemp() failed");
    dir_ = tmpl;
    owns_dir_ = true;
  } else {
    dir_ = config_.socket_dir;
    ::mkdir(dir_.c_str(), 0700);  // EEXIST is fine — shared directories
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  PH_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1() failed");
  scheduler_ = std::make_unique<WallScheduler>(*this, config_.time_scale);
  device_names_.emplace_back();  // index 0 = kInvalidNode

  metrics_ = register_transport_metrics(registry_);
  h_loop_lag_ = &registry_.histogram("transport.socket.loop.lag_us");
  h_loop_dispatch_ = &registry_.histogram("transport.socket.loop.dispatch_us");
  g_wait_stall_ = &registry_.gauge("transport.socket.loop.wait_stall_us");
  c_partial_writes_ = &registry_.counter("transport.socket.partial_writes");
  c_backpressure_ = &registry_.counter("transport.socket.backpressure");
  c_rtt_probes_ = &registry_.counter("transport.socket.rtt_probes");

  // This backend's journal stamps are wall-derived (virtual µs = wall µs ×
  // time_scale); tag the domain so /flight and PH_TRACE_JSON exports are
  // never mistaken for simulated time.
  trace_.set_clock_domain("wall");

  if (config_.sample_interval_us > 0) enable_telemetry();
  if (config_.profiler) enable_profiler();  // before ops: /profile source
  if (config_.ops_server) {
    auto started = enable_ops_server();
    PH_CHECK_MSG(started.ok(), "ops server failed to start");
  }
}

SocketTransport::~SocketTransport() {
  if (profiler_ != nullptr) {
    profiler_->stop();
    profiler_->unregister_thread();  // fold the loop thread's samples
    obs::prof::dump_folded_if_requested(*profiler_);
  }
  endpoints_.clear();  // unlinks sockets, closes fds, silently drops channels
  ops_.reset();        // closes + unlinks the ops socket before any rmdir
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (owns_dir_) ::rmdir(dir_.c_str());  // best-effort; fails if shared
}

Scheduler& SocketTransport::scheduler() { return *scheduler_; }
const Scheduler& SocketTransport::scheduler() const { return *scheduler_; }

DeviceId SocketTransport::add_device(
    std::string name, std::unique_ptr<sim::MobilityModel> /*mobility*/) {
  device_names_.push_back(std::move(name));
  return next_device_++;
}

Endpoint& SocketTransport::add_endpoint(DeviceId device,
                                        net::TechProfile profile) {
  const auto key = std::make_pair(device, profile.tech);
  PH_CHECK_MSG(!endpoints_.contains(key),
               "one endpoint per (device, technology)");
  auto endpoint =
      std::make_unique<SocketEndpoint>(*this, device, std::move(profile));
  auto [it, inserted] = endpoints_.emplace(key, std::move(endpoint));
  return *it->second;
}

Endpoint* SocketTransport::endpoint(DeviceId device, net::Technology tech) {
  auto it = endpoints_.find(std::make_pair(device, tech));
  return it == endpoints_.end() ? nullptr : it->second.get();
}

std::size_t SocketTransport::open_channel_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, endpoint] : endpoints_) n += endpoint->open_channel_count();
  return n;
}

void SocketTransport::watch_fd(int fd, std::uint32_t events,
                               std::function<void(std::uint32_t)> handler) {
  const std::uint64_t token = next_watch_token_++;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = token;
  PH_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
               "epoll_ctl(ADD) failed");
  watch_handlers_[token] = std::move(handler);
  fd_tokens_[fd] = token;
}

void SocketTransport::rearm_fd(int fd, std::uint32_t events) {
  auto it = fd_tokens_.find(fd);
  if (it == fd_tokens_.end()) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = it->second;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void SocketTransport::unwatch_fd(int fd) {
  auto it = fd_tokens_.find(fd);
  if (it == fd_tokens_.end()) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  watch_handlers_.erase(it->second);
  fd_tokens_.erase(it);
}

void SocketTransport::pump_epoll(int timeout_ms) {
  epoll_event events[64];
  const std::uint64_t wait_start = wall_clock_.now();
  int n = 0;
  {
    // Mode 2 samples landing here attribute to transport.idle — the loop
    // is parked in the kernel, not burning CPU.
    const obs::prof::Scope idle(obs::prof::Center::transport_idle);
    n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  }
  // Wait stall: how far past the requested timeout the kernel actually
  // held us — scheduler jitter and ready-list storms, not our handlers.
  const std::uint64_t waited = wall_clock_.now() - wait_start;
  const std::uint64_t budget =
      static_cast<std::uint64_t>(timeout_ms < 0 ? 0 : timeout_ms) * 1000;
  g_wait_stall_->set(waited > budget ? static_cast<double>(waited - budget)
                                     : 0.0);
  for (int i = 0; i < n; ++i) {
    // Look up by watch token, per event: an earlier handler in this batch
    // may have unregistered the watch (closed channel, settled handshake),
    // and the fd number may already belong to a newly opened socket — the
    // retired token makes the stale event drop instead of misrouting.
    auto it = watch_handlers_.find(events[i].data.u64);
    if (it == watch_handlers_.end()) continue;
    auto handler = it->second;  // copy — the handler may erase itself
    const std::uint64_t t0 = wall_clock_.now();
    {
      const obs::prof::Scope io(obs::prof::Center::transport_io);
      handler(events[i].events);
    }
    h_loop_dispatch_->observe(static_cast<double>(wall_clock_.now() - t0));
  }
}

void SocketTransport::note_channel_send(std::size_t bytes) {
  metrics_.channel_messages->inc();
  metrics_.channel_bytes->inc(bytes);
}

void SocketTransport::note_channel_receive(std::size_t bytes) {
  metrics_.channel_bytes->inc(bytes);
}

void SocketTransport::note_channel_break() {
  metrics_.channels_broken->inc();
}

void SocketTransport::note_bad_frame() { metrics_.bad_frames->inc(); }

void SocketTransport::note_partial_write() { c_partial_writes_->inc(); }

void SocketTransport::note_backpressure() { c_backpressure_->inc(); }

void SocketTransport::note_rtt_probe() { c_rtt_probes_->inc(); }

void SocketTransport::note_rtt_sample(std::uint64_t rtt_wall_us) {
  metrics_.channel_rtt_us->observe(static_cast<double>(rtt_wall_us));
}

void SocketTransport::enable_telemetry() {
  if (sampler_ != nullptr) return;
  if (config_.sample_interval_us == 0) {
    config_.sample_interval_us = 100'000;  // 100 ms wall default
  }
  obs::SamplerConfig sampler_config;
  sampler_config.interval_us = config_.sample_interval_us;
  sampler_ = std::make_unique<obs::Sampler>(registry_, wall_clock_,
                                            sampler_config);
  slo_ = std::make_unique<obs::SloEngine>(*sampler_, registry_, &trace_);
  scrape_telemetry();  // first scrape baselines the diff cursors
}

void SocketTransport::scrape_telemetry() {
  // Attribute the scrape itself (Mode 2 span) and its re-arm timer below
  // (pending schedule tag) to transport.telemetry.
  const obs::prof::TagScope tag(obs::prof::Center::transport_telemetry);
  const obs::prof::Scope span(obs::prof::Center::transport_telemetry);
  const std::uint64_t wall = wall_clock_.now();
  // Queue-depth gauges per device, summed across its endpoints' channels;
  // RTT probes ride the same pass.
  std::map<DeviceId, std::pair<std::size_t, std::size_t>> depths;
  for (auto& [key, endpoint] : endpoints_) {
    auto& [send_bytes, recv_bytes] = depths[key.first];
    endpoint->scrape_channels(wall, send_bytes, recv_bytes);
  }
  for (const auto& [device, queue] : depths) {
    const std::string prefix =
        "transport.socket.d" + std::to_string(device) + ".";
    registry_.gauge(prefix + "send_queue_bytes")
        .set(static_cast<double>(queue.first));
    registry_.gauge(prefix + "recv_queue_bytes")
        .set(static_cast<double>(queue.second));
  }
  sampler_->sample();
  slo_->evaluate();
  // Wall interval mapped into the scheduler's virtual microseconds.
  const double scale = config_.time_scale > 0.0 ? config_.time_scale : 1.0;
  const auto delay = static_cast<sim::Duration>(
      static_cast<double>(config_.sample_interval_us) * scale);
  scheduler_->schedule(delay > 0 ? delay : 1, [this]() { scrape_telemetry(); });
}

void SocketTransport::enable_profiler() {
  if (profiler_ != nullptr) return;
  profiler_ = std::make_unique<obs::prof::WallProfiler>();
  // The transport is single-threaded: construction and run_until happen on
  // the same (loop) thread, so registering here binds the right stack.
  profiler_->register_thread("loop");
  profiler_->start();
}

Result<void> SocketTransport::enable_ops_server() {
  if (ops_ != nullptr) return ok();
  enable_telemetry();
  obs::OpsServerConfig ops_config;
  ops_config.socket_path =
      dir_ + "/d" + std::to_string(config_.first_device_id) + ".ops";
  ops_config.trace_ts_divisor =
      config_.time_scale > 0.0 ? config_.time_scale : 1.0;
  obs::OpsSources sources;
  sources.registry = &registry_;
  sources.trace = &trace_;
  sources.sampler = sampler_.get();
  sources.slo = slo_.get();
  sources.profiler = profiler_.get();
  sources.device_names = [this]() {
    std::map<std::uint64_t, std::string> names;
    for (DeviceId id = config_.first_device_id;
         id < config_.first_device_id + device_names_.size() - 1; ++id) {
      const auto& name = device_names_[id - config_.first_device_id + 1];
      if (!name.empty()) names[id] = name;
    }
    return names;
  };
  auto server =
      std::make_unique<obs::OpsServer>(std::move(ops_config),
                                       std::move(sources));
  if (auto started = server->start(); !started.ok()) {
    return started;
  }
  ops_ = std::move(server);
  watch_fd(ops_->fd(), EPOLLIN,
           [this](std::uint32_t) { ops_->handle_readable(); });
  return ok();
}

}  // namespace ph::transport
