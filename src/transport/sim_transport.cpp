#include "transport/sim_transport.hpp"

#include "util/check.hpp"

namespace ph::transport {

namespace {

/// Channel over a simulated net::Link; pure forwarding.
class SimChannelState final : public detail::ChannelState {
 public:
  explicit SimChannelState(net::Link link) : link_(std::move(link)) {}

  bool chan_open() const override { return link_.open(); }
  DeviceId chan_remote() const override { return link_.remote_node(); }
  net::Technology chan_technology() const override {
    return link_.technology();
  }
  void chan_on_receive(std::function<void(BytesView)> handler) override {
    link_.on_receive(std::move(handler));
  }
  void chan_on_break(std::function<void()> handler) override {
    link_.on_break(std::move(handler));
  }
  void chan_send(BytesView payload) override { link_.send(payload); }
  double chan_signal() const override { return link_.signal(); }
  void chan_close() override { link_.close(); }

 private:
  net::Link link_;
};

Channel wrap_link(net::Link link) {
  return Channel(std::make_shared<SimChannelState>(std::move(link)));
}

/// Endpoint over a simulated net::Adapter; pure forwarding, no state.
class SimEndpoint final : public Endpoint {
 public:
  explicit SimEndpoint(net::Adapter& adapter) : adapter_(adapter) {}

  DeviceId device() const override { return adapter_.node(); }
  const net::TechProfile& profile() const override {
    return adapter_.profile();
  }
  void set_powered(bool on) override { adapter_.set_powered(on); }
  bool powered() const override { return adapter_.powered(); }

  void start_inquiry(InquiryHandler done) override {
    adapter_.start_inquiry(std::move(done));
  }
  void bind(net::Port port, DatagramHandler handler) override {
    adapter_.bind(port, std::move(handler));
  }
  void unbind(net::Port port) override { adapter_.unbind(port); }
  void send_datagram(DeviceId dst, net::Port port, BytesView payload) override {
    adapter_.send_datagram(dst, port, payload);
  }
  void broadcast_datagram(net::Port port, BytesView payload) override {
    adapter_.broadcast_datagram(port, payload);
  }
  void listen(net::Port port, AcceptHandler on_accept) override {
    adapter_.listen(port, [on_accept = std::move(on_accept)](net::Link link) {
      on_accept(wrap_link(std::move(link)));
    });
  }
  void stop_listen(net::Port port) override { adapter_.stop_listen(port); }
  void connect(DeviceId dst, net::Port port, ConnectHandler done) override {
    adapter_.connect(dst, port,
                     [done = std::move(done)](Result<net::Link> link) {
                       if (!link) {
                         done(std::move(link).error());
                         return;
                       }
                       done(wrap_link(*std::move(link)));
                     });
  }
  double signal_to(DeviceId dst) const override {
    return adapter_.signal_to(dst);
  }

 private:
  net::Adapter& adapter_;
};

}  // namespace

std::unique_ptr<Endpoint> wrap_adapter(net::Adapter& adapter) {
  return std::make_unique<SimEndpoint>(adapter);
}

class SimTransport::SimScheduler final : public Scheduler {
 public:
  explicit SimScheduler(sim::Simulator& simulator) : simulator_(simulator) {}

  sim::Time now() const override { return simulator_.now(); }
  sim::EventId schedule(sim::Duration delay, sim::EventFn fn) override {
    return simulator_.schedule(delay, std::move(fn));
  }
  bool cancel(sim::EventId id) override { return simulator_.cancel(id); }
  bool pending(sim::EventId id) const override {
    return simulator_.pending(id);
  }
  void run_until(sim::Time until) override { simulator_.run_until(until); }

 private:
  sim::Simulator& simulator_;
};

SimTransport::SimTransport(net::Medium& medium)
    : medium_(medium),
      scheduler_(std::make_unique<SimScheduler>(medium.simulator())) {}

SimTransport::~SimTransport() = default;

Scheduler& SimTransport::scheduler() { return *scheduler_; }
const Scheduler& SimTransport::scheduler() const { return *scheduler_; }

DeviceId SimTransport::add_device(
    std::string name, std::unique_ptr<sim::MobilityModel> mobility) {
  if (mobility == nullptr) {
    mobility = std::make_unique<sim::StaticMobility>(sim::Vec2{0.0, 0.0});
  }
  return medium_.add_node(std::move(name), std::move(mobility));
}

Endpoint& SimTransport::add_endpoint(DeviceId device, net::TechProfile profile) {
  const auto key = std::make_pair(device, profile.tech);
  PH_CHECK_MSG(!endpoints_.contains(key),
               "one endpoint per (device, technology)");
  net::Adapter& adapter = medium_.add_adapter(device, std::move(profile));
  auto [it, inserted] = endpoints_.emplace(key, wrap_adapter(adapter));
  return *it->second;
}

Endpoint* SimTransport::endpoint(DeviceId device, net::Technology tech) {
  auto it = endpoints_.find(std::make_pair(device, tech));
  if (it != endpoints_.end()) return it->second.get();
  // Adapters created outside this instance (legacy call sites add them
  // straight on the Medium): wrap on demand so lookups stay uniform.
  if (net::Adapter* adapter = medium_.adapter(device, tech)) {
    auto [it2, inserted] =
        endpoints_.emplace(std::make_pair(device, tech), wrap_adapter(*adapter));
    return it2->second.get();
  }
  return nullptr;
}

}  // namespace ph::transport
