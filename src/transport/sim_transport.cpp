#include "transport/sim_transport.hpp"

#include "util/check.hpp"

namespace ph::transport {

namespace {

/// Channel over a simulated net::Link; forwarding plus transport.* counts.
/// The counting never touches the RNG, schedules nothing and preserves
/// call order, so seeded runs stay byte-identical with metrics attached.
class SimChannelState final : public detail::ChannelState {
 public:
  SimChannelState(net::Link link, const TransportMetrics* metrics)
      : link_(std::move(link)), m_(metrics) {
    if (m_ != nullptr) {
      // Count breaks even when the user never installs a handler; a user
      // handler installed later replaces this with a counting wrapper.
      link_.on_break([m = m_]() { m->channels_broken->inc(); });
    }
  }

  bool chan_open() const override { return link_.open(); }
  DeviceId chan_remote() const override { return link_.remote_node(); }
  net::Technology chan_technology() const override {
    return link_.technology();
  }
  void chan_on_receive(std::function<void(BytesView)> handler) override {
    if (m_ == nullptr) {
      link_.on_receive(std::move(handler));
      return;
    }
    link_.on_receive(
        [m = m_, handler = std::move(handler)](BytesView payload) {
          m->channel_bytes->inc(payload.size());
          handler(payload);
        });
  }
  void chan_on_break(std::function<void()> handler) override {
    if (m_ == nullptr) {
      link_.on_break(std::move(handler));
      return;
    }
    link_.on_break([m = m_, handler = std::move(handler)]() {
      m->channels_broken->inc();
      if (handler) handler();
    });
  }
  void chan_send(BytesView payload) override {
    if (m_ != nullptr) {
      m_->channel_messages->inc();
      m_->channel_bytes->inc(payload.size());
    }
    link_.send(payload);
  }
  double chan_signal() const override { return link_.signal(); }
  void chan_close() override { link_.close(); }

 private:
  net::Link link_;
  const TransportMetrics* m_;
};

Channel wrap_link(net::Link link, const TransportMetrics* metrics) {
  return Channel(std::make_shared<SimChannelState>(std::move(link), metrics));
}

/// Endpoint over a simulated net::Adapter; forwarding plus transport.*
/// counts (a null metrics pointer restores pure forwarding).
class SimEndpoint final : public Endpoint {
 public:
  explicit SimEndpoint(net::Adapter& adapter,
                       const TransportMetrics* metrics = nullptr)
      : adapter_(adapter), m_(metrics) {}

  DeviceId device() const override { return adapter_.node(); }
  const net::TechProfile& profile() const override {
    return adapter_.profile();
  }
  void set_powered(bool on) override { adapter_.set_powered(on); }
  bool powered() const override { return adapter_.powered(); }

  void start_inquiry(InquiryHandler done) override {
    adapter_.start_inquiry(std::move(done));
  }
  void bind(net::Port port, DatagramHandler handler) override {
    if (m_ == nullptr) {
      adapter_.bind(port, std::move(handler));
      return;
    }
    adapter_.bind(port, [m = m_, handler = std::move(handler)](
                            net::NodeId src, BytesView payload) {
      m->datagrams_received->inc();
      handler(src, payload);
    });
  }
  void unbind(net::Port port) override { adapter_.unbind(port); }
  void send_datagram(DeviceId dst, net::Port port, BytesView payload) override {
    if (m_ != nullptr) {
      m_->datagrams_sent->inc();
      m_->datagram_bytes->inc(payload.size());
    }
    adapter_.send_datagram(dst, port, payload);
  }
  void broadcast_datagram(net::Port port, BytesView payload) override {
    if (m_ != nullptr) {
      m_->datagrams_sent->inc();
      m_->datagram_bytes->inc(payload.size());
    }
    adapter_.broadcast_datagram(port, payload);
  }
  void listen(net::Port port, AcceptHandler on_accept) override {
    adapter_.listen(port, [m = m_, on_accept = std::move(on_accept)](
                              net::Link link) {
      if (m != nullptr) m->channels_accepted->inc();
      on_accept(wrap_link(std::move(link), m));
    });
  }
  void stop_listen(net::Port port) override { adapter_.stop_listen(port); }
  void connect(DeviceId dst, net::Port port, ConnectHandler done) override {
    adapter_.connect(dst, port,
                     [m = m_, done = std::move(done)](Result<net::Link> link) {
                       if (!link) {
                         done(std::move(link).error());
                         return;
                       }
                       if (m != nullptr) m->channels_opened->inc();
                       done(wrap_link(*std::move(link), m));
                     });
  }
  double signal_to(DeviceId dst) const override {
    return adapter_.signal_to(dst);
  }

 private:
  net::Adapter& adapter_;
  const TransportMetrics* m_;
};

}  // namespace

std::unique_ptr<Endpoint> wrap_adapter(net::Adapter& adapter) {
  return std::make_unique<SimEndpoint>(adapter);
}

class SimTransport::SimScheduler final : public Scheduler {
 public:
  explicit SimScheduler(sim::Simulator& simulator) : simulator_(simulator) {}

  sim::Time now() const override { return simulator_.now(); }
  sim::EventId schedule(sim::Duration delay, sim::EventFn fn) override {
    return simulator_.schedule(delay, std::move(fn));
  }
  bool cancel(sim::EventId id) override { return simulator_.cancel(id); }
  bool pending(sim::EventId id) const override {
    return simulator_.pending(id);
  }
  void run_until(sim::Time until) override { simulator_.run_until(until); }

 private:
  sim::Simulator& simulator_;
};

SimTransport::SimTransport(net::Medium& medium)
    : medium_(medium),
      scheduler_(std::make_unique<SimScheduler>(medium.simulator())),
      metrics_(register_transport_metrics(medium.registry())) {}

SimTransport::~SimTransport() = default;

Scheduler& SimTransport::scheduler() { return *scheduler_; }
const Scheduler& SimTransport::scheduler() const { return *scheduler_; }

DeviceId SimTransport::add_device(
    std::string name, std::unique_ptr<sim::MobilityModel> mobility) {
  if (mobility == nullptr) {
    mobility = std::make_unique<sim::StaticMobility>(sim::Vec2{0.0, 0.0});
  }
  return medium_.add_node(std::move(name), std::move(mobility));
}

Endpoint& SimTransport::add_endpoint(DeviceId device, net::TechProfile profile) {
  const auto key = std::make_pair(device, profile.tech);
  PH_CHECK_MSG(!endpoints_.contains(key),
               "one endpoint per (device, technology)");
  net::Adapter& adapter = medium_.add_adapter(device, std::move(profile));
  auto [it, inserted] = endpoints_.emplace(
      key, std::make_unique<SimEndpoint>(adapter, &metrics_));
  return *it->second;
}

Endpoint* SimTransport::endpoint(DeviceId device, net::Technology tech) {
  auto it = endpoints_.find(std::make_pair(device, tech));
  if (it != endpoints_.end()) return it->second.get();
  // Adapters created outside this instance (legacy call sites add them
  // straight on the Medium): wrap on demand so lookups stay uniform.
  if (net::Adapter* adapter = medium_.adapter(device, tech)) {
    auto [it2, inserted] = endpoints_.emplace(
        std::make_pair(device, tech),
        std::make_unique<SimEndpoint>(*adapter, &metrics_));
    return it2->second.get();
  }
  return nullptr;
}

}  // namespace ph::transport
