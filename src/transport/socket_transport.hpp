// SocketTransport — the real-POSIX-socket backend of ph::transport.
//
// Each endpoint (device × technology) owns two UNIX-domain sockets in a
// shared rendezvous directory:
//
//   <dir>/d<device>.t<tech>.dgram    SOCK_DGRAM  — connectionless plane
//   <dir>/d<device>.t<tech>.stream   SOCK_STREAM — channel plane
//
// The directory doubles as the service directory (libqi's
// service-directory role): addresses are derivable from (device, tech)
// alone, so discovery is a directory scan and daemons in *separate
// processes* can rendezvous by sharing one directory. Every frame that
// crosses a socket carries the versioned proto::Frame envelope; above the
// envelope the bytes are exactly what the simulated medium carries, so
// daemon/session parsing is substrate-identical.
//
// The event loop is single-threaded epoll driven through
// Scheduler::run_until: virtual microseconds map onto the wall clock,
// optionally compressed by `time_scale` so protocol cadences tuned for
// simulated seconds (20 s inquiry gaps, 2 s pings) run in bounded
// wall-clock during tests. Channels are reliable and ordered (SOCK_STREAM
// with length-prefixed messages); a reset, EOF or power-off surfaces as a
// channel *break*, exactly like a simulated link losing radio contact.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "transport/transport.hpp"

namespace ph::obs {
class OpsServer;
class Sampler;
class SloEngine;
namespace prof {
class WallProfiler;
}
}  // namespace ph::obs

namespace ph::transport {

struct SocketTransportConfig {
  /// Rendezvous directory holding every endpoint's sockets. Empty = create
  /// (and on destruction remove) a fresh mkdtemp directory; set it
  /// explicitly to share one directory across processes.
  std::string socket_dir;
  /// Virtual microseconds that elapse per wall-clock microsecond. 1.0 =
  /// real time; 50.0 runs the daemon's 2 s ping cadence every 40 ms of
  /// wall clock. Applies to the scheduler only — socket I/O is always as
  /// fast as the kernel delivers it.
  double time_scale = 1.0;
  /// Seed of the transport's RNG stream (session ids, inquiry detection).
  std::uint64_t seed = 1;
  /// First id handed out by add_device; partition the id space when
  /// several processes share one socket_dir.
  DeviceId first_device_id = 1;
  /// WALL microseconds between telemetry scrapes (queue-depth gauges,
  /// channel RTT probes, Sampler/SloEngine tick). 0 = telemetry off
  /// unless the ops server turns it on with its 100 ms default.
  std::uint64_t sample_interval_us = 0;
  /// Start the live ops endpoint (<socket_dir>/d<first_device_id>.ops)
  /// at construction; equivalent to calling enable_ops_server().
  bool ops_server = false;
  /// Start the Mode 2 sampling profiler (obs::prof::WallProfiler) at
  /// construction: the loop thread registers its span stack and a 100 Hz
  /// sampler captures where wall time goes (transport.idle vs .io vs
  /// timer cost centers). Served on the ops /profile route and appended
  /// to $PH_PROF_FOLDED at destruction.
  bool profiler = false;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig config = {});
  ~SocketTransport() override;

  const char* name() const override { return "socket"; }
  bool simulated() const override { return false; }

  Scheduler& scheduler() override;
  const Scheduler& scheduler() const override;
  obs::Registry& registry() override { return registry_; }
  obs::Trace& trace() override { return trace_; }
  sim::Rng& rng() override { return rng_; }

  DeviceId add_device(std::string name,
                      std::unique_ptr<sim::MobilityModel> mobility) override;
  Endpoint& add_endpoint(DeviceId device, net::TechProfile profile) override;
  Endpoint* endpoint(DeviceId device, net::Technology tech) override;

  const std::string& socket_dir() const noexcept { return dir_; }

  /// Live channel fds across all endpoints (leak check for tests).
  std::size_t open_channel_count() const noexcept;

  /// Starts the live ops endpoint at <socket_dir>/d<first_device_id>.ops
  /// and registers its fd with the epoll loop. Turns telemetry sampling on
  /// (100 ms wall default) when the config left it off. Idempotent.
  Result<void> enable_ops_server() override;

  /// The wall-clock telemetry sampler / SLO engine; nullptr until
  /// telemetry is enabled (config.sample_interval_us or the ops server).
  obs::Sampler* sampler() noexcept { return sampler_.get(); }
  obs::SloEngine* slo_engine() noexcept { return slo_.get(); }

  /// Starts the Mode 2 sampling profiler: registers the calling thread
  /// (the loop thread) as "loop" and begins 100 Hz sampling. Call before
  /// enable_ops_server() for the /profile route to pick it up — the
  /// config.profiler path does both in order. Idempotent.
  void enable_profiler();
  /// nullptr until enable_profiler().
  obs::prof::WallProfiler* profiler() noexcept { return profiler_.get(); }

  /// Monotonic WALL microseconds since transport construction — the time
  /// base of RTT probes, handshake latency and loop instrumentation.
  std::uint64_t wall_now_us() const { return wall_clock_.now(); }

  // Backend-internal plumbing, public because channel states are file-local
  // classes in socket_transport.cpp. Not for use above the transport layer.

  /// Registers `fd` with the epoll loop; `handler(events)` runs from
  /// run_until. Handlers may unregister any fd, including their own.
  void watch_fd(int fd, std::uint32_t events,
                std::function<void(std::uint32_t)> handler);
  void rearm_fd(int fd, std::uint32_t events);
  void unwatch_fd(int fd);
  void note_channel_send(std::size_t bytes);
  void note_channel_receive(std::size_t bytes);
  void note_channel_break();
  void note_bad_frame();
  void note_partial_write();
  void note_backpressure();
  void note_rtt_probe();
  void note_rtt_sample(std::uint64_t rtt_wall_us);

 private:
  class WallScheduler;
  class SocketEndpoint;
  friend class SocketEndpoint;

  /// One epoll_wait + handler dispatch round; called from run_until.
  /// Observes the wait overshoot into the stall gauge and each handler's
  /// wall dispatch time into the dispatch histogram.
  void pump_epoll(int timeout_ms);

  /// Starts wall-clock telemetry: Sampler + SloEngine over the WallClock
  /// and a self-rescheduling scrape at config_.sample_interval_us.
  void enable_telemetry();
  /// One scrape: refresh per-device queue gauges, send channel RTT
  /// probes, tick the sampler and SLO engine.
  void scrape_telemetry();

  SocketTransportConfig config_;
  std::string dir_;
  bool owns_dir_ = false;
  int epoll_fd_ = -1;
  /// Handlers are keyed by a monotonically increasing watch token carried
  /// in epoll_event.data.u64, not by fd: the kernel may still hold queued
  /// events for an fd closed earlier in the same epoll_wait batch, and the
  /// fd number can be recycled by a socket opened from a handler — a stale
  /// event must not reach the new fd's handler. fd_tokens_ maps live fds
  /// back to their token for rearm_fd/unwatch_fd.
  std::uint64_t next_watch_token_ = 1;
  std::map<std::uint64_t, std::function<void(std::uint32_t)>> watch_handlers_;
  std::map<int, std::uint64_t> fd_tokens_;

  obs::Registry registry_;
  obs::Trace trace_;
  sim::Rng rng_;
  std::unique_ptr<WallScheduler> scheduler_;

  std::vector<std::string> device_names_;  // index 0 unused
  DeviceId next_device_;
  std::map<std::pair<DeviceId, net::Technology>,
           std::unique_ptr<SocketEndpoint>>
      endpoints_;

  /// Common `transport.*` handles (register_transport_metrics) — the
  /// substrate-independent schema shared with SimTransport.
  TransportMetrics metrics_;

  // Socket-only instruments (`transport.socket.*`).
  obs::Histogram* h_loop_lag_ = nullptr;       ///< timer fire lag, wall µs
  obs::Histogram* h_loop_dispatch_ = nullptr;  ///< handler run time, wall µs
  obs::Gauge* g_wait_stall_ = nullptr;         ///< epoll_wait overshoot, µs
  obs::Counter* c_partial_writes_ = nullptr;
  obs::Counter* c_backpressure_ = nullptr;
  obs::Counter* c_rtt_probes_ = nullptr;

  // Wall-clock telemetry plane (enable_telemetry / enable_ops_server).
  obs::WallClock wall_clock_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::SloEngine> slo_;
  std::unique_ptr<obs::OpsServer> ops_;
  std::unique_ptr<obs::prof::WallProfiler> profiler_;
};

}  // namespace ph::transport
