// SocketTransport — the real-POSIX-socket backend of ph::transport.
//
// Each endpoint (device × technology) owns two UNIX-domain sockets in a
// shared rendezvous directory:
//
//   <dir>/d<device>.t<tech>.dgram    SOCK_DGRAM  — connectionless plane
//   <dir>/d<device>.t<tech>.stream   SOCK_STREAM — channel plane
//
// The directory doubles as the service directory (libqi's
// service-directory role): addresses are derivable from (device, tech)
// alone, so discovery is a directory scan and daemons in *separate
// processes* can rendezvous by sharing one directory. Every frame that
// crosses a socket carries the versioned proto::Frame envelope; above the
// envelope the bytes are exactly what the simulated medium carries, so
// daemon/session parsing is substrate-identical.
//
// The event loop is single-threaded epoll driven through
// Scheduler::run_until: virtual microseconds map onto the wall clock,
// optionally compressed by `time_scale` so protocol cadences tuned for
// simulated seconds (20 s inquiry gaps, 2 s pings) run in bounded
// wall-clock during tests. Channels are reliable and ordered (SOCK_STREAM
// with length-prefixed messages); a reset, EOF or power-off surfaces as a
// channel *break*, exactly like a simulated link losing radio contact.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "transport/transport.hpp"

namespace ph::transport {

struct SocketTransportConfig {
  /// Rendezvous directory holding every endpoint's sockets. Empty = create
  /// (and on destruction remove) a fresh mkdtemp directory; set it
  /// explicitly to share one directory across processes.
  std::string socket_dir;
  /// Virtual microseconds that elapse per wall-clock microsecond. 1.0 =
  /// real time; 50.0 runs the daemon's 2 s ping cadence every 40 ms of
  /// wall clock. Applies to the scheduler only — socket I/O is always as
  /// fast as the kernel delivers it.
  double time_scale = 1.0;
  /// Seed of the transport's RNG stream (session ids, inquiry detection).
  std::uint64_t seed = 1;
  /// First id handed out by add_device; partition the id space when
  /// several processes share one socket_dir.
  DeviceId first_device_id = 1;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig config = {});
  ~SocketTransport() override;

  const char* name() const override { return "socket"; }
  bool simulated() const override { return false; }

  Scheduler& scheduler() override;
  const Scheduler& scheduler() const override;
  obs::Registry& registry() override { return registry_; }
  obs::Trace& trace() override { return trace_; }
  sim::Rng& rng() override { return rng_; }

  DeviceId add_device(std::string name,
                      std::unique_ptr<sim::MobilityModel> mobility) override;
  Endpoint& add_endpoint(DeviceId device, net::TechProfile profile) override;
  Endpoint* endpoint(DeviceId device, net::Technology tech) override;

  const std::string& socket_dir() const noexcept { return dir_; }

  /// Live channel fds across all endpoints (leak check for tests).
  std::size_t open_channel_count() const noexcept;

  // Backend-internal plumbing, public because channel states are file-local
  // classes in socket_transport.cpp. Not for use above the transport layer.

  /// Registers `fd` with the epoll loop; `handler(events)` runs from
  /// run_until. Handlers may unregister any fd, including their own.
  void watch_fd(int fd, std::uint32_t events,
                std::function<void(std::uint32_t)> handler);
  void rearm_fd(int fd, std::uint32_t events);
  void unwatch_fd(int fd);
  void note_channel_send(std::size_t bytes);
  void note_channel_receive(std::size_t bytes);
  void note_channel_break();
  void note_bad_frame();

 private:
  class WallScheduler;
  class SocketEndpoint;
  friend class SocketEndpoint;

  /// One epoll_wait + handler dispatch round; called from run_until.
  void pump_epoll(int timeout_ms);

  SocketTransportConfig config_;
  std::string dir_;
  bool owns_dir_ = false;
  int epoll_fd_ = -1;
  /// Handlers are keyed by a monotonically increasing watch token carried
  /// in epoll_event.data.u64, not by fd: the kernel may still hold queued
  /// events for an fd closed earlier in the same epoll_wait batch, and the
  /// fd number can be recycled by a socket opened from a handler — a stale
  /// event must not reach the new fd's handler. fd_tokens_ maps live fds
  /// back to their token for rearm_fd/unwatch_fd.
  std::uint64_t next_watch_token_ = 1;
  std::map<std::uint64_t, std::function<void(std::uint32_t)>> watch_handlers_;
  std::map<int, std::uint64_t> fd_tokens_;

  obs::Registry registry_;
  obs::Trace trace_;
  sim::Rng rng_;
  std::unique_ptr<WallScheduler> scheduler_;

  std::vector<std::string> device_names_;  // index 0 unused
  DeviceId next_device_;
  std::map<std::pair<DeviceId, net::Technology>,
           std::unique_ptr<SocketEndpoint>>
      endpoints_;

  // Registry handles (`transport.socket.*`).
  obs::Counter* c_datagrams_sent_ = nullptr;
  obs::Counter* c_datagrams_received_ = nullptr;
  obs::Counter* c_datagram_bytes_ = nullptr;
  obs::Counter* c_channels_opened_ = nullptr;
  obs::Counter* c_channels_accepted_ = nullptr;
  obs::Counter* c_channels_broken_ = nullptr;
  obs::Counter* c_channel_messages_ = nullptr;
  obs::Counter* c_channel_bytes_ = nullptr;
  obs::Counter* c_bad_frames_ = nullptr;
};

}  // namespace ph::transport
