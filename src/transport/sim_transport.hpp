// SimTransport — the simulated-medium backend of ph::transport.
//
// A zero-behaviour-change adapter: every Endpoint/Channel/Scheduler call
// forwards 1:1 to the corresponding net::Adapter / net::Link /
// sim::Simulator call, in the same order the pre-transport code made it,
// so RNG consumption, event ordering and therefore whole runs stay
// byte-identical to driving the Medium directly (the chaos-determinism
// and trace byte-compare gates hold through this layer). The only state
// this backend adds is the common `transport.*` metric family
// (register_transport_metrics): passive counter increments that touch
// neither the RNG nor the event queue, so they count identically on every
// same-seed run.
//
// Several SimTransport instances may wrap one Medium (the legacy
// Stack/Daemon compat constructors own one each); they share the Medium's
// registry, trace, RNG and simulator, so which instance a call goes
// through is unobservable.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "net/medium.hpp"
#include "transport/transport.hpp"

namespace ph::transport {

/// Wraps one existing net::Adapter as a transport::Endpoint. The wrapper
/// holds no state of its own — power, bindings and listeners live in the
/// adapter — so wrapping the same adapter twice yields interchangeable
/// endpoints.
std::unique_ptr<Endpoint> wrap_adapter(net::Adapter& adapter);

class SimTransport final : public Transport {
 public:
  explicit SimTransport(net::Medium& medium);
  ~SimTransport() override;

  const char* name() const override { return "sim"; }
  bool simulated() const override { return true; }

  Scheduler& scheduler() override;
  const Scheduler& scheduler() const override;
  obs::Registry& registry() override { return medium_.registry(); }
  obs::Trace& trace() override { return medium_.trace(); }
  sim::Rng& rng() override { return medium_.rng(); }

  DeviceId add_device(std::string name,
                      std::unique_ptr<sim::MobilityModel> mobility) override;
  Endpoint& add_endpoint(DeviceId device, net::TechProfile profile) override;
  Endpoint* endpoint(DeviceId device, net::Technology tech) override;

  /// Sim-only test hook: the radio world beneath this transport, for code
  /// that genuinely needs medium internals (fault injectors, access
  /// points, spatial assertions). Not part of the Transport interface —
  /// substrate-agnostic layers must not reach for it.
  net::Medium& medium() noexcept { return medium_; }

 private:
  class SimScheduler;

  net::Medium& medium_;
  std::unique_ptr<SimScheduler> scheduler_;
  /// Common `transport.*` handles in the Medium's registry; endpoints and
  /// channels created through this transport count into them.
  TransportMetrics metrics_;
  std::map<std::pair<DeviceId, net::Technology>, std::unique_ptr<Endpoint>>
      endpoints_;
};

}  // namespace ph::transport
