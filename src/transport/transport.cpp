#include "transport/transport.hpp"

namespace ph::transport {

bool Channel::open() const noexcept { return state_ && state_->chan_open(); }

DeviceId Channel::remote_node() const noexcept {
  return state_ ? state_->chan_remote() : net::kInvalidNode;
}

net::Technology Channel::technology() const noexcept {
  return state_ ? state_->chan_technology() : net::Technology::bluetooth;
}

void Channel::on_receive(std::function<void(BytesView)> handler) {
  if (state_) state_->chan_on_receive(std::move(handler));
}

void Channel::on_break(std::function<void()> handler) {
  if (state_) state_->chan_on_break(std::move(handler));
}

void Channel::send(BytesView payload) {
  if (state_) state_->chan_send(payload);
}

double Channel::signal() const { return state_ ? state_->chan_signal() : 0.0; }

void Channel::close() {
  if (state_) state_->chan_close();
}

}  // namespace ph::transport
