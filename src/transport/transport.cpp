#include "transport/transport.hpp"

namespace ph::transport {

bool Channel::open() const noexcept { return state_ && state_->chan_open(); }

DeviceId Channel::remote_node() const noexcept {
  return state_ ? state_->chan_remote() : net::kInvalidNode;
}

net::Technology Channel::technology() const noexcept {
  return state_ ? state_->chan_technology() : net::Technology::bluetooth;
}

void Channel::on_receive(std::function<void(BytesView)> handler) {
  if (state_) state_->chan_on_receive(std::move(handler));
}

void Channel::on_break(std::function<void()> handler) {
  if (state_) state_->chan_on_break(std::move(handler));
}

void Channel::send(BytesView payload) {
  if (state_) state_->chan_send(payload);
}

double Channel::signal() const { return state_ ? state_->chan_signal() : 0.0; }

void Channel::close() {
  if (state_) state_->chan_close();
}

TransportMetrics register_transport_metrics(obs::Registry& registry) {
  TransportMetrics m;
  m.datagrams_sent = &registry.counter("transport.datagrams_sent");
  m.datagrams_received = &registry.counter("transport.datagrams_received");
  m.datagram_bytes = &registry.counter("transport.datagram_bytes");
  m.channels_opened = &registry.counter("transport.channels_opened");
  m.channels_accepted = &registry.counter("transport.channels_accepted");
  m.channels_broken = &registry.counter("transport.channels_broken");
  m.channel_messages = &registry.counter("transport.channel_messages");
  m.channel_bytes = &registry.counter("transport.channel_bytes");
  m.bad_frames = &registry.counter("transport.bad_frames");
  m.handshake_us = &registry.histogram("transport.handshake_us");
  m.channel_rtt_us = &registry.histogram("transport.channel_rtt_us");
  return m;
}

Result<void> Transport::enable_ops_server() {
  return Error{Errc::not_supported,
               std::string(name()) + " transport has no ops server"};
}

}  // namespace ph::transport
