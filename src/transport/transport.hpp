// ph::transport — the substrate seam under the PeerHood middleware.
//
// Everything above this interface (daemon, library, sessions, community
// apps) speaks in terms of *endpoints* (one per device × technology),
// *datagrams* (connectionless control traffic), *channels* (reliable
// ordered message streams) and a *scheduler* (timers + a clock). Two
// backends implement it:
//
//   * SimTransport   (sim_transport.hpp)    — a zero-overhead adapter over
//     the simulated net::Medium + sim::Simulator. Behaviour, event order
//     and RNG consumption are byte-identical to calling the Medium
//     directly; same seed ⇒ same run.
//   * SocketTransport (socket_transport.hpp) — real POSIX sockets (UNIX
//     domain datagram + stream) driven by an epoll wall-clock event loop,
//     so actual daemon instances exchange the same wire formats over
//     loopback.
//
// The split follows libqi's client/server-node + service-directory design:
// the transport owns addressing and byte movement, the middleware above is
// substrate-agnostic. Time is virtual microseconds on both substrates; the
// socket backend maps them onto the wall clock (optionally compressed, see
// SocketTransportConfig::time_scale).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/tech.hpp"
#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"
#include "sim/mobility.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ph::transport {

/// Transport-level device identity; equals the Medium's node id on the
/// simulated substrate and a directory-assigned id on the socket one.
using DeviceId = net::NodeId;

// ---------------------------------------------------------------------------
// Scheduler — the clock handle of a transport.
// ---------------------------------------------------------------------------

/// Timers and a monotonic clock in virtual microseconds. The simulated
/// backend forwards to sim::Simulator; the socket backend keeps a timer
/// heap over the wall clock. The subset below is exactly what the
/// middleware layers use, so the same daemon code runs on both.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual sim::Time now() const = 0;

  /// Schedules `fn` to run `delay` after now(). Returns a cancel handle.
  virtual sim::EventId schedule(sim::Duration delay, sim::EventFn fn) = 0;

  /// Removes a pending event; false if it already ran or was cancelled.
  virtual bool cancel(sim::EventId id) = 0;

  /// True if the event is still pending.
  virtual bool pending(sim::EventId id) const = 0;

  /// Runs the substrate (events / sockets) until the clock reaches `until`.
  /// On the simulated backend this is Simulator::run_until; on the socket
  /// backend it pumps epoll + due timers until the wall clock maps past
  /// `until`. Tests and shells drive both substrates through this.
  virtual void run_until(sim::Time until) = 0;

  void run_for(sim::Duration d) { run_until(now() + d); }
};

// ---------------------------------------------------------------------------
// Channel — a reliable, ordered, message-oriented byte stream.
// ---------------------------------------------------------------------------

namespace detail {

/// Backend-side channel state. Channel is the value handle over it.
class ChannelState {
 public:
  virtual ~ChannelState() = default;
  virtual bool chan_open() const = 0;
  virtual DeviceId chan_remote() const = 0;
  virtual net::Technology chan_technology() const = 0;
  virtual void chan_on_receive(std::function<void(BytesView)> handler) = 0;
  virtual void chan_on_break(std::function<void()> handler) = 0;
  virtual void chan_send(BytesView payload) = 0;
  virtual double chan_signal() const = 0;
  virtual void chan_close() = 0;
};

}  // namespace detail

/// The transport analogue of net::Link: connection-oriented, ordered,
/// reliable message delivery between two endpoints of one technology.
/// What a Channel cannot survive is the substrate dropping the pair (peer
/// out of radio range, socket reset) — then it *breaks* and both sides'
/// break handlers fire. Seamless recovery across technologies is the
/// PeerHood session layer's job, built on top of these.
///
/// Channel is a value handle (shared state internally); copies refer to
/// the same endpoint of the same channel.
class Channel {
 public:
  /// An empty (never-connected) handle; valid() is false.
  Channel() = default;
  explicit Channel(std::shared_ptr<detail::ChannelState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }
  /// True while data can still be sent (not closed, not broken).
  bool open() const noexcept;

  DeviceId remote_node() const noexcept;
  net::Technology technology() const noexcept;

  /// Handler for message payloads arriving from the peer, delivered in
  /// send order, exactly once, while the channel is open.
  void on_receive(std::function<void(BytesView)> handler);

  /// Handler invoked once when the channel terminates for any reason other
  /// than a local close(): peer closed, peer unreachable, endpoint
  /// powered off, socket reset.
  void on_break(std::function<void()> handler);

  /// Queues a message to the peer; silently discarded if no longer open.
  void send(BytesView payload);

  /// Current signal strength towards the peer in [0,1]; real substrates
  /// report 1 while the connection is alive.
  double signal() const;

  /// Graceful local close; the peer observes a break shortly afterwards.
  void close();

  /// Two handles are equal when they refer to the same underlying channel.
  friend bool operator==(const Channel& a, const Channel& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  std::shared_ptr<detail::ChannelState> state_;
};

// ---------------------------------------------------------------------------
// Endpoint — one device × technology attachment point.
// ---------------------------------------------------------------------------

using DatagramHandler = std::function<void(DeviceId src, BytesView payload)>;
using InquiryHandler = std::function<void(std::vector<DeviceId> found)>;
using AcceptHandler = std::function<void(Channel channel)>;
using ConnectHandler = std::function<void(Result<Channel>)>;

/// The per-radio vocabulary the PeerHood plugins adapt: discovery,
/// unreliable port-addressed datagrams, and channel open/accept. Mirrors
/// net::Adapter on the simulated substrate; on the socket substrate each
/// endpoint owns real datagram + listening sockets.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual DeviceId device() const = 0;
  virtual const net::TechProfile& profile() const = 0;
  net::Technology technology() const { return profile().tech; }

  /// Powered-off endpoints neither send, receive, answer inquiries nor
  /// keep channels alive (in-flight channels break).
  virtual void set_powered(bool on) = 0;
  virtual bool powered() const = 0;

  /// Starts a discovery scan; `done` fires after the profile's inquiry
  /// duration with the powered same-technology peers found.
  virtual void start_inquiry(InquiryHandler done) = 0;

  /// Binds a handler for datagrams addressed to `port` (one per port;
  /// rebinding replaces it).
  virtual void bind(net::Port port, DatagramHandler handler) = 0;
  virtual void unbind(net::Port port) = 0;

  /// Fire-and-forget message; lost frames are dropped (callers requiring
  /// reliability retry with their own timeout, as the daemon does).
  virtual void send_datagram(DeviceId dst, net::Port port,
                             BytesView payload) = 0;

  /// One-to-all datagram to every in-range peer bound on `port`. Only
  /// meaningful on technologies with `supports_broadcast`; no-op otherwise.
  virtual void broadcast_datagram(net::Port port, BytesView payload) = 0;

  /// Accepts incoming channels on `port`.
  virtual void listen(net::Port port, AcceptHandler on_accept) = 0;
  virtual void stop_listen(net::Port port) = 0;

  /// Opens a channel to `dst`:`port`; completes asynchronously with a
  /// Channel or an error (peer unreachable, unpowered, not listening).
  virtual void connect(DeviceId dst, net::Port port, ConnectHandler done) = 0;

  /// Signal strength towards `dst` in [0,1]; 0 = unreachable. Real
  /// substrates report 1 for any reachable registered peer.
  virtual double signal_to(DeviceId dst) const = 0;
};

// ---------------------------------------------------------------------------
// TransportMetrics — the substrate-independent telemetry schema.
// ---------------------------------------------------------------------------

/// The metric families every backend registers eagerly at construction,
/// under common `transport.*` names, so dashboards, ph_ops_dump merges and
/// the conformance parity test read one schema regardless of substrate.
/// Backend-specific extras live under `transport.<backend>.` (e.g. the
/// epoll-loop instruments under `transport.socket.`). A backend registers
/// every family even when it never observes into some of them — parity is
/// names + kinds; values are whatever the substrate can actually measure.
struct TransportMetrics {
  obs::Counter* datagrams_sent = nullptr;
  obs::Counter* datagrams_received = nullptr;
  obs::Counter* datagram_bytes = nullptr;      ///< payload bytes sent
  obs::Counter* channels_opened = nullptr;     ///< successful connects
  obs::Counter* channels_accepted = nullptr;   ///< successful accepts
  obs::Counter* channels_broken = nullptr;
  obs::Counter* channel_messages = nullptr;    ///< messages sent
  obs::Counter* channel_bytes = nullptr;       ///< payload bytes both ways
  obs::Counter* bad_frames = nullptr;
  obs::Histogram* handshake_us = nullptr;      ///< wall µs, connect + accept
  obs::Histogram* channel_rtt_us = nullptr;    ///< wall µs, echoed probes
};

/// Registers (or re-finds) the whole family in `registry`. Idempotent —
/// several transports over one registry share the instruments.
TransportMetrics register_transport_metrics(obs::Registry& registry);

// ---------------------------------------------------------------------------
// Transport — the root object a PeerHood world hangs off.
// ---------------------------------------------------------------------------

class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// "sim" or "socket" — logs and bench labels.
  virtual const char* name() const = 0;
  /// True when time and radio physics are simulated (virtual time).
  virtual bool simulated() const = 0;

  virtual Scheduler& scheduler() = 0;
  virtual const Scheduler& scheduler() const = 0;

  /// The per-world metrics registry and virtual-time trace journal every
  /// layer above publishes into (previously reached through net::Medium).
  virtual obs::Registry& registry() = 0;
  virtual obs::Trace& trace() = 0;

  /// The world's deterministic RNG stream (session ids, jitter forks).
  virtual sim::Rng& rng() = 0;

  /// Registers a device. `mobility` drives positions on the simulated
  /// substrate and is ignored (may be null) on real ones.
  virtual DeviceId add_device(std::string name,
                              std::unique_ptr<sim::MobilityModel> mobility) = 0;

  /// Creates the endpoint for (device, profile.tech); at most one per
  /// pair. The endpoint lives as long as the transport.
  virtual Endpoint& add_endpoint(DeviceId device, net::TechProfile profile) = 0;

  /// The device's endpoint for a technology, or nullptr if it has none.
  virtual Endpoint* endpoint(DeviceId device, net::Technology tech) = 0;

  /// Starts the backend's live introspection endpoint (obs::OpsServer on
  /// the socket substrate) serving /metrics, /series, /slo and /flight.
  /// Idempotent once successful. The default returns not_supported: a
  /// simulated world has no process boundary worth scraping across —
  /// tests read its registry directly.
  virtual Result<void> enable_ops_server();
};

}  // namespace ph::transport
