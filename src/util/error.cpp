#include "util/error.hpp"

namespace ph {

std::string_view to_string(Errc code) noexcept {
  switch (code) {
    case Errc::ok: return "ok";
    case Errc::device_unreachable: return "device_unreachable";
    case Errc::unknown_device: return "unknown_device";
    case Errc::service_not_found: return "service_not_found";
    case Errc::service_already_registered: return "service_already_registered";
    case Errc::connect_failed: return "connect_failed";
    case Errc::radio_busy: return "radio_busy";
    case Errc::connection_lost: return "connection_lost";
    case Errc::timeout: return "timeout";
    case Errc::protocol_error: return "protocol_error";
    case Errc::auth_failed: return "auth_failed";
    case Errc::no_such_member: return "no_such_member";
    case Errc::not_trusted: return "not_trusted";
    case Errc::content_not_found: return "content_not_found";
    case Errc::no_such_group: return "no_such_group";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::state_error: return "state_error";
    case Errc::transport_error: return "transport_error";
    case Errc::not_supported: return "not_supported";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out{ph::to_string(code)};
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace ph
