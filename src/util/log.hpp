// Leveled logger with a pluggable timestamp source.
//
// The discrete-event simulator installs its virtual clock so log lines carry
// simulated time; outside a simulation the timestamp column is simply "-".
// Logging defaults to `warn` so tests and benches stay quiet; examples turn
// on `info` to narrate what the middleware is doing.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace ph {

enum class LogLevel : int { trace = 0, debug, info, warn, error, off };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Installs a clock used to prefix messages, e.g. the simulator's
  /// virtual time in microseconds. Pass nullptr to clear.
  void set_clock(std::function<std::uint64_t()> now_us) { now_us_ = std::move(now_us); }

  /// Redirects output (tests capture logs this way); nullptr -> stderr.
  void set_sink(std::function<void(std::string_view)> sink) { sink_ = std::move(sink); }

  bool enabled(LogLevel level) const { return level >= level_; }
  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::warn;
  std::function<std::uint64_t()> now_us_;
  std::function<void(std::string_view)> sink_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  std::string_view component;
  std::ostringstream stream;

  LogLine(LogLevel lvl, std::string_view comp) : level(lvl), component(comp) {}
  ~LogLine() { Logger::instance().write(level, component, stream.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream << value;
    return *this;
  }
};
}  // namespace detail

}  // namespace ph

// Usage: PH_LOG(info, "phd") << "discovered " << n << " devices";
#define PH_LOG(level, component)                                        \
  if (!::ph::Logger::instance().enabled(::ph::LogLevel::level)) {       \
  } else                                                                \
    ::ph::detail::LogLine(::ph::LogLevel::level, component)
