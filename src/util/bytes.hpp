// Bytes — the unit of data exchanged over simulated links, plus helpers
// for converting to/from text payloads.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ph {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Copies a string into a byte vector.
inline Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

/// Interprets bytes as UTF-8/ASCII text.
inline std::string to_text(BytesView data) {
  return std::string(data.begin(), data.end());
}

/// Hex dump ("0a 1f ...") for logs and test diagnostics; at most `max` bytes.
std::string hex_dump(BytesView data, std::size_t max = 64);

}  // namespace ph
