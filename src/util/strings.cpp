#include "util/strings.hpp"

#include <cctype>

namespace ph {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string normalize_interest(std::string_view raw) {
  const std::string_view trimmed = trim(raw);
  std::string out;
  out.reserve(trimmed.size());
  bool pending_space = false;
  for (char c : trimmed) {
    if (is_space(c)) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace ph
