// Small string utilities used by interest normalization and the wire codecs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ph {

/// Lower-cases ASCII letters (interest matching in the thesis is
/// case-insensitive in spirit: "Football" and "football" are one interest).
std::string to_lower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a separator; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Canonical interest key: trimmed + lower-cased + inner whitespace squeezed.
/// "  England   Football " -> "england football".
std::string normalize_interest(std::string_view raw);

}  // namespace ph
