#include "util/log.hpp"

#include <cstdio>

namespace ph {

namespace {
std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(message.size() + 48);
  if (now_us_) {
    const std::uint64_t us = now_us_();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%8llu.%06llu",
                  static_cast<unsigned long long>(us / 1'000'000),
                  static_cast<unsigned long long>(us % 1'000'000));
    line += buf;
  } else {
    line += "       -      ";
  }
  line += ' ';
  line += level_tag(level);
  line += " [";
  line += component;
  line += "] ";
  line += message;
  line += '\n';
  if (sink_) {
    sink_(line);
  } else {
    std::fputs(line.c_str(), stderr);
  }
}

}  // namespace ph
