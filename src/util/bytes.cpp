#include "util/bytes.hpp"

namespace ph {

std::string hex_dump(BytesView data, std::size_t max) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(data.size(), max);
  out.reserve(n * 3 + 4);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  if (data.size() > max) out += " ...";
  return out;
}

}  // namespace ph
