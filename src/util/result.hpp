// Result<T> — a minimal expected-style value-or-error type.
//
// C++20 has no std::expected, so the stack carries recoverable failures in
// this small, allocation-free (beyond T/Error themselves) sum type.
//
//   Result<DeviceInfo> r = daemon.device(id);
//   if (!r) return r.error();
//   use(r.value());
//
// Dereferencing a Result that holds an error is a programming error and
// terminates (std::get throws std::bad_variant_access).
#pragma once

#include <utility>
#include <variant>

#include "util/error.hpp"

namespace ph {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return DeviceInfo{...};`
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  /// Implicit from an error: `return Error{Errc::timeout};`
  Result(Error error) : state_(std::in_place_index<1>, std::move(error)) {}
  /// Implicit from a bare code: `return Errc::timeout;`
  Result(Errc code) : state_(std::in_place_index<1>, Error{code}) {}

  bool ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & { return std::get<0>(state_); }
  const T& value() const& { return std::get<0>(state_); }
  T&& value() && { return std::get<0>(std::move(state_)); }

  const Error& error() const& { return std::get<1>(state_); }
  Error&& error() && { return std::get<1>(std::move(state_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

  /// Monadic map: applies `fn` to the value, forwards the error untouched.
  template <typename Fn>
  auto map(Fn&& fn) && -> Result<decltype(fn(std::declval<T&&>()))> {
    if (!ok()) return std::move(*this).error();
    return fn(std::move(*this).value());
  }

 private:
  std::variant<T, Error> state_;
};

/// Result<void>: success carries nothing.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}
  Result(Errc code) : error_(Error{code}) {}

  bool ok() const noexcept { return error_.code == Errc::ok; }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const& { return error_; }

 private:
  Error error_{};
};

/// Success value for Result<void> returns: `return ph::ok();`
inline Result<void> ok() { return Result<void>{}; }

}  // namespace ph
