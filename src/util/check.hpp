// PH_CHECK — invariant checks that survive release builds.
//
// assert() disappears under NDEBUG (the default RelWithDebInfo build);
// PH_CHECK always evaluates, printing the failed expression and location
// before aborting. Use it for invariants whose violation means the process
// must not continue (harness setup, protocol-impossible states).
#pragma once

#include <cstdio>
#include <cstdlib>

#define PH_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PH_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define PH_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PH_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
