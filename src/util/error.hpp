// Error codes shared across the PeerHood Community stack.
//
// Recoverable failures (peer out of range, service missing, not trusted,
// timeouts) travel through ph::Result<T> rather than exceptions, following
// the convention that exceptions are reserved for programming errors and
// resource exhaustion.
#pragma once

#include <string>
#include <string_view>

namespace ph {

/// Category of a recoverable failure.
enum class Errc {
  ok = 0,
  /// The addressed device is not (or no longer) inside radio range.
  device_unreachable,
  /// No device with the given identifier is known to the daemon.
  unknown_device,
  /// The remote device does not advertise the requested service.
  service_not_found,
  /// A service with the same name is already registered locally.
  service_already_registered,
  /// Connection establishment failed (no common technology, peer refused).
  connect_failed,
  /// The radio (ours or the peer's) is at link capacity right now — a
  /// transient condition worth retrying shortly (Bluetooth piconets carry
  /// at most 7 links).
  radio_busy,
  /// An established connection broke and could not be recovered.
  connection_lost,
  /// The operation did not complete within its deadline.
  timeout,
  /// Malformed wire data.
  protocol_error,
  /// Authentication failed (wrong username/password).
  auth_failed,
  /// The requested member does not exist on the queried device
  /// (the thesis' NO_MEMBERS_YET response).
  no_such_member,
  /// The caller is not on the remote user's trusted-friends list
  /// (the thesis' NOT_TRUSTED_YET response).
  not_trusted,
  /// The requested content item is not shared.
  content_not_found,
  /// The group does not exist.
  no_such_group,
  /// Generic invalid-argument failure for API misuse detectable at runtime.
  invalid_argument,
  /// Local persistent state rejected the operation (e.g. duplicate profile).
  state_error,
  /// The transport substrate failed an operation (socket error, endpoint
  /// missing) in a way no more specific code covers.
  transport_error,
  /// The operation is not available on this backend, technology or device
  /// (e.g. powering a radio the device does not have).
  not_supported,
};

/// Highest-numbered enumerator. Keep in sync when appending codes: wire
/// decoders clamp unknown ordinals to this instead of hard-coding an
/// enumerator that silently truncates codes added later.
inline constexpr Errc kMaxErrc = Errc::not_supported;

/// Human-readable name of an error code; stable, for logs and tests.
std::string_view to_string(Errc code) noexcept;

/// A failure: code plus optional free-form context.
struct Error {
  Errc code = Errc::ok;
  std::string message;

  Error() = default;
  explicit Error(Errc c) : code(c) {}
  Error(Errc c, std::string msg) : code(c), message(std::move(msg)) {}

  /// "device_unreachable: bt addr 00:17 out of range"
  std::string to_string() const;

  friend bool operator==(const Error& a, const Error& b) {
    return a.code == b.code;  // context is advisory
  }
};

}  // namespace ph
