// Epoch arena and buffer pool — bulk-lifetime memory for the hot paths.
//
// The simulator's three hottest heap populations share a shape: many
// small objects created at a furious rate whose lifetimes end together —
// frame payloads die when the delivery event fires, sampler ring points
// die with the run, trace records die when the flight-recorder ring
// evicts them. General-purpose new/delete pays full price per object;
// these helpers amortize it to one allocation per chunk (Arena) or one
// per high-water-mark buffer (BufferPool) and recycle the memory.
//
// ASan integration: recycled memory is *poisoned* while it sits idle
// (Arena::reset, BufferPool release) and unpoisoned on reuse, so the
// asan-ubsan preset (ph_sanitize_smoke) still catches use-after-free on
// recycled blocks — the exact bug class manual pooling usually hides.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__has_feature)
#  if __has_feature(address_sanitizer)
#    define PH_HAS_ASAN 1
#  endif
#elif defined(__SANITIZE_ADDRESS__)
#  define PH_HAS_ASAN 1
#endif

#if defined(PH_HAS_ASAN)
#  include <sanitizer/asan_interface.h>
#  define PH_ASAN_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#  define PH_ASAN_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#  define PH_ASAN_POISON(addr, size) ((void)(addr), (void)(size))
#  define PH_ASAN_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace ph::util {

/// Chunked bump allocator with epoch-bulk reclamation. allocate() bumps a
/// pointer inside the current chunk (O(1), no per-object bookkeeping);
/// reset() ends the epoch, poisons every chunk and rewinds — the chunks
/// themselves are kept for the next epoch, so a steady-state epoch cycle
/// performs no allocator calls at all. Objects placed in an arena must be
/// trivially destructible (nobody will run their destructors).
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    // Unpoison before handing memory back to the allocator.
    for (Chunk& chunk : chunks_) {
      PH_ASAN_UNPOISON(chunk.data.get(), chunk.size);
    }
  }

  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    // Align the address, not just the offset: chunk bases come from
    // operator new[] and only guarantee __STDCPP_DEFAULT_NEW_ALIGNMENT__.
    Chunk* chunk = current_ < chunks_.size() ? &chunks_[current_] : nullptr;
    std::size_t offset = chunk != nullptr ? aligned_offset(*chunk, align) : 0;
    if (chunk == nullptr || offset + size > chunk->size) {
      advance_chunk(size, align);
      chunk = &chunks_[current_];
      offset = aligned_offset(*chunk, align);
    }
    std::byte* out = chunk->data.get() + offset;
    chunk->used = offset + size;
    PH_ASAN_UNPOISON(out, size);
    bytes_allocated_ += size;
    return out;
  }

  /// Typed helper: `n` default-constructed T. T must be trivially
  /// destructible — the arena never runs destructors.
  template <class T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    T* out = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(out + i)) T();
    return out;
  }

  /// Ends the epoch: every chunk is rewound and poisoned. All pointers
  /// previously handed out are invalid; ASan builds trap any use.
  void reset() {
    for (Chunk& chunk : chunks_) {
      PH_ASAN_POISON(chunk.data.get(), chunk.size);
      chunk.used = 0;
    }
    current_ = 0;
    ++epoch_;
  }

  std::size_t chunk_count() const noexcept { return chunks_.size(); }
  std::uint64_t epoch() const noexcept { return epoch_; }
  /// Bytes handed out since construction (across all epochs).
  std::uint64_t bytes_allocated() const noexcept { return bytes_allocated_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t aligned(std::size_t offset, std::size_t align) noexcept {
    return (offset + align - 1) & ~(align - 1);
  }

  /// First offset at or past chunk.used whose *address* satisfies align.
  static std::size_t aligned_offset(const Chunk& chunk,
                                    std::size_t align) noexcept {
    const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    return static_cast<std::size_t>(aligned(base + chunk.used, align) - base);
  }

  void advance_chunk(std::size_t size, std::size_t align) {
    // Reuse a rewound chunk from an earlier epoch if it fits; otherwise
    // grow by one chunk sized for the request.
    while (current_ + 1 < chunks_.size()) {
      ++current_;
      Chunk& chunk = chunks_[current_];
      if (aligned_offset(chunk, align) + size <= chunk.size) return;
    }
    const std::size_t need = size + align;
    const std::size_t bytes = need > chunk_bytes_ ? need : chunk_bytes_;
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(bytes);
    chunk.size = bytes;
    chunks_.push_back(std::move(chunk));
    current_ = chunks_.size() - 1;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t bytes_allocated_ = 0;
};

class BufferPool;

/// A byte buffer borrowed from a BufferPool. Returns its storage to the
/// pool on destruction — or frees it outright if the pool died first
/// (scheduled delivery closures can outlive the Medium that pooled them).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&&) noexcept = default;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      core_ = std::move(other.core_);
      buf_ = std::move(other.buf_);
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { release(); }

  const std::uint8_t* data() const noexcept { return buf_.data(); }
  std::size_t size() const noexcept { return buf_.size(); }
  bool empty() const noexcept { return buf_.empty(); }

 private:
  friend class BufferPool;
  struct Core;

  PooledBuffer(std::weak_ptr<Core> core, std::vector<std::uint8_t> buf)
      : core_(std::move(core)), buf_(std::move(buf)) {}

  void release();

  std::weak_ptr<Core> core_;
  std::vector<std::uint8_t> buf_;
};

/// Free-list of byte buffers for frame payloads. acquire() copies the
/// payload into a recycled buffer (no allocation once the pool is warm,
/// as long as payloads stay at or below the high-water size); the
/// PooledBuffer handle returns it on destruction. Idle buffers are ASan-
/// poisoned in the free list.
class BufferPool {
 public:
  BufferPool() : core_(std::make_shared<PooledBuffer::Core>()) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  PooledBuffer acquire(const std::uint8_t* data, std::size_t size);

  std::size_t idle() const noexcept;
  std::uint64_t reused() const noexcept;
  std::uint64_t fresh() const noexcept;

 private:
  std::shared_ptr<PooledBuffer::Core> core_;
};

struct PooledBuffer::Core {
  std::vector<std::vector<std::uint8_t>> free;
  std::uint64_t reused = 0;
  std::uint64_t fresh = 0;
};

inline void PooledBuffer::release() {
  if (buf_.capacity() == 0) return;
  if (auto core = core_.lock()) {
    // clear() before poisoning: the vector's own bookkeeping must not
    // touch the poisoned region later.
    buf_.clear();
    PH_ASAN_POISON(buf_.data(), buf_.capacity());
    core->free.push_back(std::move(buf_));
  }
  buf_ = {};
  core_.reset();
}

inline BufferPool::~BufferPool() {
  for (std::vector<std::uint8_t>& buf : core_->free) {
    PH_ASAN_UNPOISON(buf.data(), buf.capacity());
  }
}

inline PooledBuffer BufferPool::acquire(const std::uint8_t* data,
                                        std::size_t size) {
  std::vector<std::uint8_t> buf;
  if (!core_->free.empty()) {
    buf = std::move(core_->free.back());
    core_->free.pop_back();
    PH_ASAN_UNPOISON(buf.data(), buf.capacity());
    ++core_->reused;
  } else {
    ++core_->fresh;
  }
  buf.assign(data, data + size);  // assign, not resize: no zero-fill pass
  return PooledBuffer(core_, std::move(buf));
}

inline std::size_t BufferPool::idle() const noexcept {
  return core_->free.size();
}
inline std::uint64_t BufferPool::reused() const noexcept {
  return core_->reused;
}
inline std::uint64_t BufferPool::fresh() const noexcept {
  return core_->fresh;
}

}  // namespace ph::util
